//! Feature-gate symmetry: the `audit`/`trace` zero-cost-when-off
//! contract, checked on both sides of the build.
//!
//! **Manifest side** (`feature-forwarding`): the runtime auditor and the
//! structured tracer only compile in when the feature is enabled *through
//! the whole dependency chain*. A crate that depends on a crate declaring
//! `audit`/`trace` but does not forward the feature silently strands the
//! gate: `cargo build --features audit` on the downstream crate compiles
//! the auditor out of its dependencies. This pass walks every workspace
//! manifest and requires each tracked feature to be declared and fully
//! forwarded (`dep/feature` for every dependency that declares it).
//!
//! **Source side** (`feature-symmetry`): an item defined only under
//! `#[cfg(feature = "...")]` but referenced from unconditional code needs
//! a matching `#[cfg(not(feature = "..."))]` zero-cost stub, or the
//! default build breaks the moment the call site is exercised. The check
//! is per-file and token-aware (definitions found by item keyword, uses
//! by identifier, cfg scopes from the lexer).

use crate::lexer::LexedFile;
use crate::report::Diagnostic;
use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::path::Path;

/// The feature gates whose forwarding the manifest pass polices.
pub const TRACKED_FEATURES: &[&str] = &["audit", "trace"];

// ------------------------------------------------------------------
// Manifest side: the workspace feature graph
// ------------------------------------------------------------------

/// One parsed `Cargo.toml`, reduced to what the pass needs.
#[derive(Debug, Default)]
pub struct Manifest {
    /// Workspace-relative manifest path.
    pub rel: String,
    /// `package.name`.
    pub name: String,
    /// Feature name → (definition line, forwarded entries).
    pub features: BTreeMap<String, (usize, Vec<String>)>,
    /// Dependency keys from `[dependencies]` (workspace deps keep their
    /// package name as the key in this repo).
    pub deps: Vec<String>,
}

/// Minimal TOML-shape parser: sections, `name = "..."`, feature arrays
/// (possibly multi-line) and dependency keys. Enough for this
/// workspace's manifests; no general TOML semantics.
pub fn parse_manifest(rel: &str, content: &str) -> Manifest {
    let mut m = Manifest {
        rel: rel.to_string(),
        ..Manifest::default()
    };
    #[derive(PartialEq)]
    enum Section {
        Package,
        Features,
        Dependencies,
        Other,
    }
    let mut section = Section::Other;
    let mut lines = content.lines().enumerate().peekable();
    while let Some((idx, raw)) = lines.next() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            section = match line {
                "[package]" => Section::Package,
                "[features]" => Section::Features,
                "[dependencies]" => Section::Dependencies,
                _ => Section::Other,
            };
            continue;
        }
        let Some(eq) = line.find('=') else {
            continue;
        };
        let key = line[..eq].trim();
        let value = line[eq + 1..].trim();
        match section {
            Section::Package if key == "name" => {
                m.name = value.trim_matches('"').to_string();
            }
            Section::Features => {
                let mut entries = Vec::new();
                let mut buf = value.to_string();
                // Multi-line arrays: accumulate until the closing `]`.
                while !buf.contains(']') {
                    let Some((_, next)) = lines.next() else {
                        break;
                    };
                    buf.push(' ');
                    buf.push_str(next.split('#').next().unwrap_or("").trim());
                }
                let mut rest = buf.as_str();
                while let Some(q) = rest.find('"') {
                    let tail = &rest[q + 1..];
                    let Some(q2) = tail.find('"') else {
                        break;
                    };
                    entries.push(tail[..q2].to_string());
                    rest = &tail[q2 + 1..];
                }
                m.features.insert(key.to_string(), (idx + 1, entries));
            }
            Section::Dependencies => {
                // `netsparse-desim.workspace = true` / `serde = { ... }`.
                let dep = key.split('.').next().unwrap_or(key).trim();
                if !dep.is_empty() {
                    m.deps.push(dep.to_string());
                }
            }
            _ => {}
        }
    }
    m
}

/// Checks feature forwarding across `manifests` (keyed by package name).
pub fn check_forwarding(manifests: &BTreeMap<String, Manifest>) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for m in manifests.values() {
        for &feat in TRACKED_FEATURES {
            let deps_with: Vec<&str> = m
                .deps
                .iter()
                .filter(|d| {
                    manifests
                        .get(d.as_str())
                        .is_some_and(|dm| dm.features.contains_key(feat))
                })
                .map(|d| d.as_str())
                .collect();
            if deps_with.is_empty() {
                continue;
            }
            match m.features.get(feat) {
                None => {
                    let wanted: Vec<String> = deps_with
                        .iter()
                        .map(|d| format!("\"{d}/{feat}\""))
                        .collect();
                    diags.push(Diagnostic {
                        file: m.rel.clone(),
                        line: 1,
                        rule: "feature-forwarding",
                        message: format!(
                            "crate `{}` does not declare feature `{feat}` but \
                             depends on crates that do ({}); add `{feat} = \
                             [{}]` so the gate forwards through the whole \
                             graph",
                            m.name,
                            deps_with.join(", "),
                            wanted.join(", "),
                        ),
                    });
                }
                Some((line, entries)) => {
                    let missing: Vec<String> = deps_with
                        .iter()
                        .filter(|d| !entries.iter().any(|e| e == &format!("{d}/{feat}")))
                        .map(|d| format!("\"{d}/{feat}\""))
                        .collect();
                    if !missing.is_empty() {
                        diags.push(Diagnostic {
                            file: m.rel.clone(),
                            line: *line,
                            rule: "feature-forwarding",
                            message: format!(
                                "feature `{feat}` of crate `{}` does not \
                                 forward to every dependency that declares \
                                 it; add {}",
                                m.name,
                                missing.join(", "),
                            ),
                        });
                    }
                }
            }
        }
    }
    diags
}

/// Loads and checks every workspace manifest that participates in the
/// simulation build (crates/*, tests, examples — not the vendored
/// `third_party` stand-ins, not depless `xtask`).
pub fn check_feature_graph(root: &Path) -> Vec<Diagnostic> {
    let mut manifests = BTreeMap::new();
    let mut paths: Vec<std::path::PathBuf> = Vec::new();
    if let Ok(entries) = fs::read_dir(root.join("crates")) {
        for e in entries.flatten() {
            paths.push(e.path().join("Cargo.toml"));
        }
    }
    paths.push(root.join("tests/Cargo.toml"));
    paths.push(root.join("examples/Cargo.toml"));
    paths.sort();
    for p in paths {
        let Ok(content) = fs::read_to_string(&p) else {
            continue;
        };
        let rel = p
            .strip_prefix(root)
            .unwrap_or(&p)
            .to_string_lossy()
            .replace('\\', "/");
        let m = parse_manifest(&rel, &content);
        if !m.name.is_empty() {
            manifests.insert(m.name.clone(), m);
        }
    }
    check_forwarding(&manifests)
}

// ------------------------------------------------------------------
// Source side: cfg-stub symmetry
// ------------------------------------------------------------------

/// Item keywords whose following identifier names a definition.
const ITEM_KEYWORDS: &[&str] = &[
    "fn", "struct", "enum", "trait", "type", "const", "static", "mod", "union",
];

/// Checks that feature-gated definitions used from unconditional code
/// have `#[cfg(not(feature = ...))]` twins. Per-file; suppressible with
/// `simaudit:allow(feature-symmetry)`.
pub fn check_cfg_symmetry(rel: &str, lf: &LexedFile) -> Vec<Diagnostic> {
    // name → set of (feature, polarity) gates seen on definitions of it,
    // plus the token indices and first lines of all definition sites.
    let mut gates: BTreeMap<String, BTreeSet<(String, bool)>> = BTreeMap::new();
    let mut def_lines: BTreeMap<String, usize> = BTreeMap::new();
    let mut def_tokens: BTreeSet<usize> = BTreeSet::new();

    fn note_def(
        lf: &LexedFile,
        name_tok: usize,
        gates: &mut BTreeMap<String, BTreeSet<(String, bool)>>,
        def_lines: &mut BTreeMap<String, usize>,
        def_tokens: &mut BTreeSet<usize>,
    ) {
        let name = lf.text(name_tok).to_string();
        def_tokens.insert(name_tok);
        def_lines
            .entry(name.clone())
            .or_insert(lf.tokens[name_tok].line);
        let entry = gates.entry(name).or_default();
        for (f, pol) in lf.gates(name_tok) {
            entry.insert((f.to_string(), pol));
        }
    }

    for i in 0..lf.tokens.len() {
        let Some(word) = lf.ident(i) else {
            continue;
        };
        if lf.tokens[i].in_attr {
            continue;
        }
        if ITEM_KEYWORDS.contains(&word) && lf.ident(i + 1).is_some() {
            // `fn(...)` type position has no name ident and is skipped.
            note_def(lf, i + 1, &mut gates, &mut def_lines, &mut def_tokens);
        }
        // A gated struct field: the identifier opens its own cfg scope
        // (scope differs from the previous token's) and is followed by a
        // single `:`.
        if i > 0
            && lf.tokens[i].scope != lf.tokens[i - 1].scope
            && !lf.gates(i).is_empty()
            && lf.is_punct(i + 1, b':')
            && !lf.is_punct(i + 2, b':')
        {
            note_def(lf, i, &mut gates, &mut def_lines, &mut def_tokens);
        }
    }

    let mut diags = Vec::new();
    let mut reported: BTreeSet<&str> = BTreeSet::new();
    for (name, gset) in &gates {
        // Features this name is positively gated on somewhere.
        for (feat, pol) in gset {
            if !pol {
                continue;
            }
            let has_stub = gset.iter().any(|(f, p)| f == feat && !*p);
            if has_stub {
                continue;
            }
            // An unconditional (w.r.t. this feature) use of the name?
            let use_line = (0..lf.tokens.len()).find_map(|i| {
                if def_tokens.contains(&i) || lf.tokens[i].in_attr {
                    return None;
                }
                if lf.ident(i) != Some(name.as_str()) {
                    return None;
                }
                if lf.gated_on(i, feat).is_none() {
                    Some(lf.tokens[i].line)
                } else {
                    None
                }
            });
            if let Some(uline) = use_line {
                if reported.insert(name.as_str()) {
                    diags.push(Diagnostic {
                        file: rel.to_string(),
                        line: *def_lines.get(name).unwrap_or(&1),
                        rule: "feature-symmetry",
                        message: format!(
                            "`{name}` is defined only under #[cfg(feature = \
                             \"{feat}\")] but referenced from unconditional \
                             code (line {uline}); add a #[cfg(not(feature = \
                             \"{feat}\"))] zero-cost stub or gate the use"
                        ),
                    });
                }
            }
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manifest_map(specs: &[(&str, &str)]) -> BTreeMap<String, Manifest> {
        specs
            .iter()
            .map(|(rel, content)| {
                let m = parse_manifest(rel, content);
                (m.name.clone(), m)
            })
            .collect()
    }

    #[test]
    fn parses_multiline_feature_arrays_and_dep_keys() {
        let m = parse_manifest(
            "crates/x/Cargo.toml",
            "[package]\nname = \"x\"\n[features]\naudit = [\n  \"a/audit\",\n  \"b/audit\",\n]\n[dependencies]\na.workspace = true\nb = { path = \"../b\" }\n",
        );
        assert_eq!(m.name, "x");
        assert_eq!(m.deps, vec!["a", "b"]);
        assert_eq!(
            m.features.get("audit").map(|(_, e)| e.clone()),
            Some(vec!["a/audit".to_string(), "b/audit".to_string()])
        );
    }

    #[test]
    fn missing_feature_declaration_is_flagged() {
        let ms = manifest_map(&[
            (
                "crates/a/Cargo.toml",
                "[package]\nname = \"a\"\n[features]\naudit = []\n",
            ),
            (
                "crates/b/Cargo.toml",
                "[package]\nname = \"b\"\n[dependencies]\na.workspace = true\n",
            ),
        ]);
        let diags = check_forwarding(&ms);
        assert_eq!(diags.len(), 1, "{diags:#?}");
        assert_eq!(diags[0].rule, "feature-forwarding");
        assert!(diags[0]
            .message
            .contains("does not declare feature `audit`"));
    }

    #[test]
    fn partial_forwarding_is_flagged() {
        let ms = manifest_map(&[
            (
                "crates/a/Cargo.toml",
                "[package]\nname = \"a\"\n[features]\ntrace = []\n",
            ),
            (
                "crates/b/Cargo.toml",
                "[package]\nname = \"b\"\n[features]\ntrace = []\n",
            ),
            (
                "crates/c/Cargo.toml",
                "[package]\nname = \"c\"\n[features]\ntrace = [\"a/trace\"]\n[dependencies]\na.workspace = true\nb.workspace = true\n",
            ),
        ]);
        let diags = check_forwarding(&ms);
        assert_eq!(diags.len(), 1, "{diags:#?}");
        assert!(diags[0].message.contains("\"b/trace\""), "{}", diags[0]);
    }

    #[test]
    fn complete_forwarding_is_clean() {
        let ms = manifest_map(&[
            (
                "crates/a/Cargo.toml",
                "[package]\nname = \"a\"\n[features]\naudit = []\ntrace = []\n",
            ),
            (
                "crates/c/Cargo.toml",
                "[package]\nname = \"c\"\n[features]\naudit = [\"a/audit\"]\ntrace = [\"a/trace\"]\n[dependencies]\na.workspace = true\n",
            ),
        ]);
        assert!(check_forwarding(&ms).is_empty());
    }
}
