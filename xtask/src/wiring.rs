//! `port-wiring`: cross-file exhaustiveness of the Event→Port→component
//! routing table.
//!
//! The component architecture routes every [`Event`] through
//! `Event::port()` to exactly one component's `handle` — that mapping is
//! the complete coupling surface of the simulator, and the compiler only
//! checks it *per match*, not across files. This pass parses the `Event`
//! and `Port` enums out of `crates/core/src/sim/events.rs` and verifies:
//!
//! 1. every `Event` variant is explicitly named in `Event::port()` (and
//!    the match has no `_ =>` wildcard that could hide a new variant);
//! 2. every `Port` variant is explicitly dispatched in the driver's
//!    `dispatch` match (again with no wildcard);
//! 3. every `Event` variant is referenced by at least one component
//!    handler file — an event that routes somewhere but is never matched
//!    or constructed is dead wiring.
//!
//! These diagnostics are structural contracts and cannot be silenced
//! with allow markers.

use crate::lexer::{LexedFile, Tok};
use crate::report::Diagnostic;
use std::collections::BTreeSet;

/// Where the event vocabulary lives.
pub const EVENTS_FILE: &str = "crates/core/src/sim/events.rs";
/// Where the dispatch loop lives.
pub const DRIVER_FILE: &str = "crates/core/src/sim/driver.rs";
/// The component handler files (driver included: it destructures the
/// fabric-port events itself).
pub const HANDLER_FILES: &[&str] = &[
    "crates/core/src/sim/driver.rs",
    "crates/core/src/sim/node.rs",
    "crates/core/src/sim/rack.rs",
    "crates/core/src/sim/fabric.rs",
];

/// Runs the wiring pass. `handlers` pairs each handler path with its
/// lexed source; `events`/`driver` are the lexed routing files.
pub fn check(
    events: &LexedFile,
    driver: &LexedFile,
    handlers: &[(&str, &LexedFile)],
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();

    let Some((event_variants, _)) = enum_variants(events, "Event") else {
        diags.push(file_diag(
            EVENTS_FILE,
            1,
            "cannot find `enum Event` — the wiring pass needs the event \
             vocabulary here"
                .to_string(),
        ));
        return diags;
    };
    let Some((port_variants, _)) = enum_variants(events, "Port") else {
        diags.push(file_diag(
            EVENTS_FILE,
            1,
            "cannot find `enum Port` — the wiring pass needs the port map \
             here"
                .to_string(),
        ));
        return diags;
    };

    // 1. Every Event variant is named in Event::port(); no wildcard arm.
    match fn_body(events, "port") {
        Some((start, end)) => {
            let mapped = path_refs(events, start, end, "Event");
            for (v, line) in &event_variants {
                if !mapped.contains(v.as_str()) {
                    diags.push(file_diag(
                        EVENTS_FILE,
                        *line,
                        format!(
                            "Event::{v} is not mapped in Event::port(); every \
                             event variant must name its owning port \
                             explicitly"
                        ),
                    ));
                }
            }
            if let Some(line) = wildcard_arm(events, start, end) {
                diags.push(file_diag(
                    EVENTS_FILE,
                    line,
                    "wildcard `_ =>` arm in Event::port() hides unmapped \
                     variants; name every variant explicitly"
                        .to_string(),
                ));
            }
        }
        None => diags.push(file_diag(
            EVENTS_FILE,
            1,
            "cannot find `fn port` — Event::port() is the single routing \
             table and must exist"
                .to_string(),
        )),
    }

    // 2. Every Port variant is dispatched by the driver; no wildcard arm.
    match fn_body(driver, "dispatch") {
        Some((start, end)) => {
            let dispatched = path_refs(driver, start, end, "Port");
            for (v, line) in &port_variants {
                if !dispatched.contains(v.as_str()) {
                    diags.push(Diagnostic {
                        file: DRIVER_FILE.to_string(),
                        line: *line,
                        rule: "port-wiring",
                        message: format!(
                            "Port::{v} is never dispatched in the driver's \
                             `dispatch` match; events routed to it would be \
                             dropped"
                        ),
                    });
                }
            }
            if let Some(line) = wildcard_arm(driver, start, end) {
                diags.push(Diagnostic {
                    file: DRIVER_FILE.to_string(),
                    line,
                    rule: "port-wiring",
                    message: "wildcard `_ =>` arm in the driver's `dispatch` \
                              match hides undispatched ports; name every Port \
                              variant explicitly"
                        .to_string(),
                });
            }
        }
        None => diags.push(Diagnostic {
            file: DRIVER_FILE.to_string(),
            line: 1,
            rule: "port-wiring",
            message: "cannot find `fn dispatch` — the driver must own the \
                      port dispatch match"
                .to_string(),
        }),
    }

    // 3. Every Event variant is referenced by some component handler.
    let mut handled: BTreeSet<String> = BTreeSet::new();
    for (_, lf) in handlers {
        handled.extend(path_refs(lf, 0, lf.tokens.len(), "Event"));
    }
    for (v, line) in &event_variants {
        if !handled.contains(v.as_str()) {
            diags.push(file_diag(
                EVENTS_FILE,
                *line,
                format!(
                    "Event::{v} is routed but never referenced by any \
                     component handler (driver/node/rack/fabric) — dead \
                     wiring or a missing match arm"
                ),
            ));
        }
    }

    diags
}

fn file_diag(file: &str, line: usize, message: String) -> Diagnostic {
    Diagnostic {
        file: file.to_string(),
        line,
        rule: "port-wiring",
        message,
    }
}

/// The variants of `enum <name>`, each with its definition line, plus
/// the enum's own line. `None` when the enum is absent.
fn enum_variants(lf: &LexedFile, name: &str) -> Option<(Vec<(String, usize)>, usize)> {
    let mut i = 0;
    let open = loop {
        if i + 1 >= lf.tokens.len() {
            return None;
        }
        if lf.is_ident(i, "enum") && !lf.tokens[i].in_attr && lf.is_ident(i + 1, name) {
            // Skip generics and bounds to the body brace.
            let mut j = i + 2;
            while j < lf.tokens.len() && !lf.is_punct(j, b'{') {
                j += 1;
            }
            break j;
        }
        i += 1;
    };
    let enum_line = lf.tokens[i].line;
    let close = lf.matching_close(open);
    let mut variants = Vec::new();
    let mut j = open + 1;
    let mut expect_name = true;
    while j < close {
        match lf.tokens[j].kind {
            // Skip a variant's payload or discriminant group wholesale.
            Tok::Punct(b'{') | Tok::Punct(b'(') | Tok::Punct(b'[') => {
                j = lf.matching_close(j) + 1;
            }
            Tok::Punct(b',') => {
                expect_name = true;
                j += 1;
            }
            Tok::Ident if expect_name && !lf.tokens[j].in_attr => {
                variants.push((lf.text(j).to_string(), lf.tokens[j].line));
                expect_name = false;
                j += 1;
            }
            _ => j += 1,
        }
    }
    Some((variants, enum_line))
}

/// Token range (exclusive) of the body of the first `fn <name>`.
fn fn_body(lf: &LexedFile, name: &str) -> Option<(usize, usize)> {
    for i in 0..lf.tokens.len() {
        if lf.is_ident(i, "fn") && !lf.tokens[i].in_attr && lf.is_ident(i + 1, name) {
            let mut j = i + 2;
            while j < lf.tokens.len() {
                match lf.tokens[j].kind {
                    Tok::Punct(b'{') => return Some((j, lf.matching_close(j))),
                    Tok::Punct(b';') => break,
                    Tok::Punct(b'(') | Tok::Punct(b'[') => j = lf.matching_close(j) + 1,
                    _ => j += 1,
                }
            }
        }
    }
    None
}

/// Every `X` in `<base>::X` path references within `[start, end)`.
fn path_refs(lf: &LexedFile, start: usize, end: usize, base: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let end = end.min(lf.tokens.len());
    for i in start..end {
        if lf.is_ident(i, base)
            && !lf.tokens[i].in_attr
            && lf.is_punct(i + 1, b':')
            && lf.is_punct(i + 2, b':')
        {
            if let Some(v) = lf.ident(i + 3) {
                out.insert(v.to_string());
            }
        }
    }
    out
}

/// Line of a `_ =>` match arm within `[start, end)`, if any.
fn wildcard_arm(lf: &LexedFile, start: usize, end: usize) -> Option<usize> {
    let end = end.min(lf.tokens.len());
    for i in start..end {
        if lf.is_ident(i, "_") && lf.is_punct(i + 1, b'=') && lf.is_punct(i + 2, b'>') {
            return Some(lf.tokens[i].line);
        }
    }
    None
}
