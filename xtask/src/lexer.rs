//! A hand-rolled Rust lexer for the simcheck passes.
//!
//! The offline build has no `syn`/`proc-macro2`, so simcheck carries its
//! own tokenizer. It is not a full Rust lexer — it produces exactly what
//! the lint passes need and nothing more:
//!
//! - a flat token stream (idents, single-byte puncts, string/char/number
//!   literals, lifetimes) with **comments and literal contents removed
//!   from rule visibility** — `// HashMap` or `r"rand"` can never trip a
//!   rule again;
//! - correct handling of the literal forms that defeat line-regex
//!   scanners: raw strings (`r#"..."#`) containing `//`, char literals
//!   like `'"'` and `'{'`, byte strings, and nested `/* /* */ */` block
//!   comments;
//! - a **cfg scope** per token: whether the token sits under
//!   `#[cfg(test)]`, and which `feature = "..."` gates (with polarity,
//!   through `not`/`any`/`all`) enclose it — attribute-to-item extents are
//!   tracked through braces, `;` and `,` terminators;
//! - the `simaudit:allow(<rule>)` markers found in comments, each with
//!   its surrounding justification text (the hygiene pass polices both).

/// Token kinds. Literal kinds carry no decoded value — the passes only
/// need to know the span is a literal (and therefore inert).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident,
    /// A single punctuation byte (multi-byte operators arrive as runs).
    Punct(u8),
    /// String literal of any form (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// Char or byte literal (`'x'`, `b'\n'`, `'"'`).
    Char,
    /// Numeric literal (possibly with a suffix).
    Num,
    /// Lifetime (`'a`) — distinct from [`Tok::Char`].
    Lifetime,
}

/// One token of the source, annotated with its line and cfg scope.
#[derive(Debug, Clone)]
pub struct Token {
    /// What kind of token this is.
    pub kind: Tok,
    /// Byte range in the source.
    pub start: usize,
    /// Exclusive end of the byte range.
    pub end: usize,
    /// 1-based line the token starts on.
    pub line: usize,
    /// Index into [`LexedFile::scopes`].
    pub scope: u32,
    /// True when the token sits inside a `#[...]` attribute.
    pub in_attr: bool,
}

/// One cfg scope: a node in the scope tree built from `#[cfg(...)]`
/// attributes. The root scope (index 0) is unconditional.
#[derive(Debug, Clone, Default)]
pub struct Scope {
    /// Enclosing scope, or `None` for the root.
    pub parent: Option<u32>,
    /// This scope's own `cfg(test)` flag (not inherited).
    pub test: bool,
    /// Feature gates introduced here: `(name, polarity)`, where polarity
    /// `false` means the gate sits under `not(...)`.
    pub features: Vec<(String, bool)>,
}

/// A `simaudit:allow(<rule>)` marker found in a comment.
#[derive(Debug, Clone)]
pub struct AllowMarker {
    /// 1-based line the marker occurs on.
    pub line: usize,
    /// The rule name between the parentheses.
    pub rule: String,
    /// The comment's text with the marker itself removed — the written
    /// justification the hygiene pass requires.
    pub justification: String,
}

/// A lexed source file: tokens, the cfg scope tree, and allow markers.
#[derive(Debug)]
pub struct LexedFile {
    src: String,
    /// The token stream (comments and whitespace removed).
    pub tokens: Vec<Token>,
    /// The cfg scope tree; index 0 is the unconditional root.
    pub scopes: Vec<Scope>,
    /// Allow markers harvested from comments, in source order.
    pub markers: Vec<AllowMarker>,
}

impl LexedFile {
    /// Tokenizes `src` and computes cfg scopes and allow markers.
    pub fn lex(src: &str) -> LexedFile {
        let mut lf = LexedFile {
            src: src.to_string(),
            tokens: Vec::new(),
            scopes: vec![Scope::default()],
            markers: Vec::new(),
        };
        lf.tokenize();
        lf.assign_scopes();
        lf
    }

    /// The token's text.
    pub fn text(&self, i: usize) -> &str {
        let t = &self.tokens[i];
        &self.src[t.start..t.end]
    }

    /// `Some(text)` when token `i` exists and is an identifier.
    pub fn ident(&self, i: usize) -> Option<&str> {
        match self.tokens.get(i) {
            Some(t) if t.kind == Tok::Ident => Some(&self.src[t.start..t.end]),
            _ => None,
        }
    }

    /// True when token `i` exists and is the identifier `s`.
    pub fn is_ident(&self, i: usize, s: &str) -> bool {
        self.ident(i) == Some(s)
    }

    /// True when token `i` exists and is the punctuation byte `c`.
    pub fn is_punct(&self, i: usize, c: u8) -> bool {
        matches!(self.tokens.get(i), Some(t) if t.kind == Tok::Punct(c))
    }

    /// True when any scope enclosing token `i` is `cfg(test)`.
    pub fn in_test(&self, i: usize) -> bool {
        let mut s = Some(self.tokens[i].scope);
        while let Some(id) = s {
            let sc = &self.scopes[id as usize];
            if sc.test {
                return true;
            }
            s = sc.parent;
        }
        false
    }

    /// The polarity of the innermost `feature = "feat"` gate enclosing
    /// token `i`, or `None` when the token is not gated on `feat`.
    pub fn gated_on(&self, i: usize, feat: &str) -> Option<bool> {
        let mut s = Some(self.tokens[i].scope);
        while let Some(id) = s {
            let sc = &self.scopes[id as usize];
            for (name, pol) in &sc.features {
                if name == feat {
                    return Some(*pol);
                }
            }
            s = sc.parent;
        }
        None
    }

    /// Every feature gate enclosing token `i`, innermost first.
    pub fn gates(&self, i: usize) -> Vec<(&str, bool)> {
        let mut out = Vec::new();
        let mut s = Some(self.tokens[i].scope);
        while let Some(id) = s {
            let sc = &self.scopes[id as usize];
            for (name, pol) in &sc.features {
                out.push((name.as_str(), *pol));
            }
            s = sc.parent;
        }
        out
    }

    /// Index of the token closing the group opened at `open` (`(`→`)`,
    /// `[`→`]`, `{`→`}`), or `tokens.len()` when unbalanced.
    pub fn matching_close(&self, open: usize) -> usize {
        let (o, c) = match self.tokens[open].kind {
            Tok::Punct(b'(') => (b'(', b')'),
            Tok::Punct(b'[') => (b'[', b']'),
            Tok::Punct(b'{') => (b'{', b'}'),
            _ => return self.tokens.len(),
        };
        let mut depth = 0i64;
        for i in open..self.tokens.len() {
            match self.tokens[i].kind {
                Tok::Punct(x) if x == o => depth += 1,
                Tok::Punct(x) if x == c => {
                    depth -= 1;
                    if depth == 0 {
                        return i;
                    }
                }
                _ => {}
            }
        }
        self.tokens.len()
    }

    // ---------------------------------------------------------------
    // Tokenizer
    // ---------------------------------------------------------------

    fn tokenize(&mut self) {
        let src = std::mem::take(&mut self.src);
        let b = src.as_bytes();
        let mut i = 0usize;
        let mut line = 1usize;
        let push = |kind: Tok, start: usize, end: usize, line: usize, toks: &mut Vec<Token>| {
            toks.push(Token {
                kind,
                start,
                end,
                line,
                scope: 0,
                in_attr: false,
            });
        };
        let mut toks = Vec::new();
        while i < b.len() {
            let c = b[i];
            match c {
                b'\n' => {
                    line += 1;
                    i += 1;
                }
                c if c.is_ascii_whitespace() => i += 1,
                b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                    let start = i;
                    while i < b.len() && b[i] != b'\n' {
                        i += 1;
                    }
                    self.harvest_markers(&src[start..i], line);
                }
                b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                    let start = i;
                    let start_line = line;
                    let mut depth = 1;
                    i += 2;
                    while i < b.len() && depth > 0 {
                        if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                            depth += 1;
                            i += 2;
                        } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                            depth -= 1;
                            i += 2;
                        } else {
                            if b[i] == b'\n' {
                                line += 1;
                            }
                            i += 1;
                        }
                    }
                    self.harvest_markers(&src[start..i], start_line);
                }
                b'"' => {
                    let start = i;
                    let start_line = line;
                    i += 1;
                    while i < b.len() {
                        match b[i] {
                            b'\\' => i += 2,
                            b'"' => {
                                i += 1;
                                break;
                            }
                            b'\n' => {
                                line += 1;
                                i += 1;
                            }
                            _ => i += 1,
                        }
                    }
                    push(Tok::Str, start, i.min(b.len()), start_line, &mut toks);
                }
                b'\'' => {
                    // Lifetime (`'a`) vs char literal (`'x'`, `'\n'`,
                    // `'"'`). A lifetime is `'` + ident run *not* closed
                    // by another `'`.
                    let start = i;
                    let mut j = i + 1;
                    if j < b.len() && (b[j].is_ascii_alphabetic() || b[j] == b'_') {
                        let mut k = j + 1;
                        while k < b.len() && (b[k].is_ascii_alphanumeric() || b[k] == b'_') {
                            k += 1;
                        }
                        if k < b.len() && b[k] == b'\'' {
                            // `'s'`-style char literal.
                            push(Tok::Char, start, k + 1, line, &mut toks);
                            i = k + 1;
                        } else {
                            push(Tok::Lifetime, start, k, line, &mut toks);
                            i = k;
                        }
                        continue;
                    }
                    // Escaped or punctuation char literal: scan to the
                    // closing quote, honouring backslash escapes.
                    if j < b.len() && b[j] == b'\\' {
                        j += 2;
                        // `\u{1F600}`-style escapes run until `}`.
                        if j - 1 < b.len() && b[j - 1] == b'u' && j < b.len() && b[j] == b'{' {
                            while j < b.len() && b[j] != b'}' {
                                j += 1;
                            }
                            j += 1;
                        }
                    } else {
                        j += 1;
                    }
                    if j < b.len() && b[j] == b'\'' {
                        j += 1;
                    }
                    push(Tok::Char, start, j.min(b.len()), line, &mut toks);
                    i = j;
                }
                c if c.is_ascii_digit() => {
                    let start = i;
                    while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                        i += 1;
                    }
                    push(Tok::Num, start, i, line, &mut toks);
                }
                c if c.is_ascii_alphabetic() || c == b'_' => {
                    let start = i;
                    while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                        i += 1;
                    }
                    let word = &src[start..i];
                    // Raw/byte string prefixes: `r"`, `r#"`, `b"`, `br#"`.
                    let is_raw =
                        matches!(word, "r" | "br") && i < b.len() && (b[i] == b'"' || b[i] == b'#');
                    let is_bstr = word == "b" && i < b.len() && (b[i] == b'"' || b[i] == b'\'');
                    if is_raw {
                        let mut hashes = 0usize;
                        let mut j = i;
                        while j < b.len() && b[j] == b'#' {
                            hashes += 1;
                            j += 1;
                        }
                        if j < b.len() && b[j] == b'"' {
                            j += 1;
                            let closer: Vec<u8> = std::iter::once(b'"')
                                .chain(std::iter::repeat_n(b'#', hashes))
                                .collect();
                            while j < b.len() && !b[j..].starts_with(&closer) {
                                if b[j] == b'\n' {
                                    line += 1;
                                }
                                j += 1;
                            }
                            j = (j + closer.len()).min(b.len());
                            push(Tok::Str, start, j, line, &mut toks);
                            i = j;
                            continue;
                        }
                        // `r#ident` raw identifier: fall through as ident.
                    }
                    if is_bstr {
                        // Re-lex from the quote as a plain string/char; the
                        // `b` prefix is folded into the literal span.
                        if b[i] == b'"' {
                            let mut j = i + 1;
                            while j < b.len() {
                                match b[j] {
                                    b'\\' => j += 2,
                                    b'"' => {
                                        j += 1;
                                        break;
                                    }
                                    b'\n' => {
                                        line += 1;
                                        j += 1;
                                    }
                                    _ => j += 1,
                                }
                            }
                            push(Tok::Str, start, j.min(b.len()), line, &mut toks);
                            i = j;
                        } else {
                            let mut j = i + 1;
                            if j < b.len() && b[j] == b'\\' {
                                j += 2;
                            } else {
                                j += 1;
                            }
                            if j < b.len() && b[j] == b'\'' {
                                j += 1;
                            }
                            push(Tok::Char, start, j.min(b.len()), line, &mut toks);
                            i = j;
                        }
                        continue;
                    }
                    push(Tok::Ident, start, i, line, &mut toks);
                }
                c => {
                    push(Tok::Punct(c), i, i + 1, line, &mut toks);
                    i += 1;
                }
            }
        }
        self.tokens = toks;
        self.src = src;
    }

    fn harvest_markers(&mut self, comment: &str, start_line: usize) {
        const NEEDLE: &str = "simaudit:allow(";
        let mut from = 0usize;
        let mut stripped = comment.to_string();
        let mut found = Vec::new();
        while let Some(at) = comment[from..].find(NEEDLE) {
            let at = from + at;
            let rest = &comment[at + NEEDLE.len()..];
            let Some(close) = rest.find(')') else {
                break;
            };
            let rule = rest[..close].trim().to_string();
            let line = start_line + comment[..at].matches('\n').count();
            let whole = &comment[at..at + NEEDLE.len() + close + 1];
            stripped = stripped.replace(whole, "");
            found.push((line, rule));
            from = at + NEEDLE.len() + close + 1;
        }
        // The justification is whatever prose surrounds the marker(s),
        // comment syntax and separators removed.
        let justification = stripped
            .trim_start_matches('/')
            .trim_start_matches('*')
            .trim_start_matches('!')
            .replace("//", " ")
            .replace(['*', ':'], " ")
            .trim()
            .to_string();
        for (line, rule) in found {
            self.markers.push(AllowMarker {
                line,
                rule,
                justification: justification.clone(),
            });
        }
    }

    // ---------------------------------------------------------------
    // Cfg scope assignment
    // ---------------------------------------------------------------

    fn assign_scopes(&mut self) {
        #[derive(PartialEq)]
        enum Close {
            /// Region ends at the matching `}` of a body opened at `depth`.
            Brace,
            /// Region awaits its item: ends at `;`/`,` at `depth`, or
            /// converts to `Brace` when a body `{` opens at `depth`.
            Pending,
        }
        struct Region {
            prev: u32,
            close: Close,
            depth: u32,
        }

        let mut cur: u32 = 0;
        let mut depth: u32 = 0;
        // Generic-angle-bracket nesting (`Result<SimReport, SimError>`):
        // commas inside `<...>` sit at the same brace/paren depth as the
        // item header, so the Pending close below must ignore them or a
        // cfg region ends mid-signature. `<` counts as a generic open
        // only after an identifier, `>`, or `:` (path/type position);
        // braces and `;` reset the counter, so an unpaired comparison
        // `<` in an expression cannot leak far.
        let mut angle: u32 = 0;
        let mut regions: Vec<Region> = Vec::new();
        let mut i = 0usize;
        while i < self.tokens.len() {
            // Attribute: `#[...]` (outer) or `#![...]` (inner).
            if self.is_punct(i, b'#') {
                let (inner, lb) = if self.is_punct(i + 1, b'[') {
                    (false, i + 1)
                } else if self.is_punct(i + 1, b'!') && self.is_punct(i + 2, b'[') {
                    (true, i + 2)
                } else {
                    self.tokens[i].scope = cur;
                    self.tokens[i].in_attr = false;
                    i += 1;
                    continue;
                };
                let rb = self.matching_close(lb);
                for t in i..=rb.min(self.tokens.len() - 1) {
                    self.tokens[t].scope = cur;
                    self.tokens[t].in_attr = true;
                }
                if !inner {
                    if let Some(scope) = self.parse_cfg(lb + 1, rb, cur) {
                        let id = self.scopes.len() as u32;
                        self.scopes.push(scope);
                        regions.push(Region {
                            prev: cur,
                            close: Close::Pending,
                            depth,
                        });
                        cur = id;
                    }
                }
                i = rb + 1;
                continue;
            }
            self.tokens[i].scope = cur;
            match self.tokens[i].kind {
                Tok::Punct(b'{') => {
                    // A body opening at a Pending region's depth binds it
                    // (and any stacked sibling attributes) to this block.
                    for r in regions.iter_mut().rev() {
                        if r.close == Close::Pending && r.depth == depth {
                            r.close = Close::Brace;
                        } else {
                            break;
                        }
                    }
                    depth += 1;
                    angle = 0;
                }
                Tok::Punct(b'(') | Tok::Punct(b'[') => depth += 1,
                Tok::Punct(b'}') => {
                    depth = depth.saturating_sub(1);
                    angle = 0;
                    while let Some(r) = regions.last() {
                        if r.close == Close::Brace && r.depth == depth {
                            cur = r.prev;
                            regions.pop();
                        } else {
                            break;
                        }
                    }
                }
                Tok::Punct(b')') | Tok::Punct(b']') => depth = depth.saturating_sub(1),
                Tok::Punct(b'<')
                    if i > 0
                        && (matches!(self.tokens[i - 1].kind, Tok::Ident)
                            || self.is_punct(i - 1, b'>')
                            || self.is_punct(i - 1, b':')) =>
                {
                    angle += 1;
                }
                Tok::Punct(b'>') => angle = angle.saturating_sub(1),
                Tok::Punct(b';') => {
                    angle = 0;
                    while let Some(r) = regions.last() {
                        if r.close == Close::Pending && r.depth == depth {
                            cur = r.prev;
                            regions.pop();
                        } else {
                            break;
                        }
                    }
                }
                Tok::Punct(b',') if angle == 0 => {
                    while let Some(r) = regions.last() {
                        if r.close == Close::Pending && r.depth == depth {
                            cur = r.prev;
                            regions.pop();
                        } else {
                            break;
                        }
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }

    /// Parses the tokens of one attribute body (`lb+1 .. rb`) and returns
    /// a scope when the attribute is a `cfg(...)`.
    fn parse_cfg(&self, start: usize, end: usize, parent: u32) -> Option<Scope> {
        if !self.is_ident(start, "cfg") || !self.is_punct(start + 1, b'(') {
            return None;
        }
        let mut scope = Scope {
            parent: Some(parent),
            test: false,
            features: Vec::new(),
        };
        self.parse_cond(start + 2, end, true, &mut scope);
        Some(scope)
    }

    /// Recursively records `test` and `feature = "..."` mentions with
    /// their polarity through `not`/`any`/`all` combinators.
    fn parse_cond(&self, start: usize, end: usize, polarity: bool, scope: &mut Scope) {
        let mut i = start;
        while i < end {
            if self.is_ident(i, "not") && self.is_punct(i + 1, b'(') {
                let close = self.matching_close(i + 1);
                self.parse_cond(i + 2, close, !polarity, scope);
                i = close + 1;
            } else if (self.is_ident(i, "any") || self.is_ident(i, "all"))
                && self.is_punct(i + 1, b'(')
            {
                let close = self.matching_close(i + 1);
                self.parse_cond(i + 2, close, polarity, scope);
                i = close + 1;
            } else if self.is_ident(i, "feature")
                && self.is_punct(i + 1, b'=')
                && matches!(self.tokens.get(i + 2), Some(t) if t.kind == Tok::Str)
            {
                let raw = self.text(i + 2);
                let name = raw.trim_matches('"').to_string();
                scope.features.push((name, polarity));
                i += 3;
            } else if self.is_ident(i, "test") {
                if polarity {
                    scope.test = true;
                }
                i += 1;
            } else {
                i += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(lf: &LexedFile) -> Vec<&str> {
        (0..lf.tokens.len()).filter_map(|i| lf.ident(i)).collect()
    }

    #[test]
    fn raw_strings_containing_comment_markers_are_inert() {
        let lf = LexedFile::lex(r###"let s = r#"// HashMap "quoted" rand"#; let x = 1;"###);
        assert!(
            !idents(&lf).contains(&"HashMap"),
            "raw string content leaked into the token stream"
        );
        assert!(
            idents(&lf).contains(&"x"),
            "code after the raw string lexes"
        );
        assert_eq!(lf.tokens.iter().filter(|t| t.kind == Tok::Str).count(), 1);
    }

    #[test]
    fn char_literal_double_quote_does_not_open_a_string() {
        let lf = LexedFile::lex("let q = '\"'; let m = HashMap::new();");
        assert!(
            idents(&lf).contains(&"HashMap"),
            "code after the '\"' char literal must stay visible"
        );
        assert_eq!(lf.tokens.iter().filter(|t| t.kind == Tok::Char).count(), 1);
    }

    #[test]
    fn char_literal_brace_does_not_skew_scopes() {
        let src = "fn f() { let open = '{'; let close = '}'; }\nfn g() { Instant::now(); }";
        let lf = LexedFile::lex(src);
        let inst = (0..lf.tokens.len())
            .find(|&i| lf.is_ident(i, "Instant"))
            .expect("Instant token present");
        assert_eq!(lf.tokens[inst].line, 2);
        assert!(!lf.in_test(inst));
    }

    #[test]
    fn nested_block_comments_skip_cleanly() {
        let lf = LexedFile::lex("/* outer /* inner rand */ still comment */ let a = 2;");
        assert_eq!(idents(&lf), vec!["let", "a"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lf = LexedFile::lex("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert_eq!(
            lf.tokens.iter().filter(|t| t.kind == Tok::Lifetime).count(),
            3
        );
        assert_eq!(lf.tokens.iter().filter(|t| t.kind == Tok::Char).count(), 0);
    }

    #[test]
    fn cfg_test_scope_covers_module_body() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f() { HashMap::new(); }\n}\nfn hot() { HashMap::new(); }";
        let lf = LexedFile::lex(src);
        let maps: Vec<usize> = (0..lf.tokens.len())
            .filter(|&i| lf.is_ident(i, "HashMap"))
            .collect();
        assert_eq!(maps.len(), 2);
        assert!(lf.in_test(maps[0]), "first HashMap is inside cfg(test)");
        assert!(!lf.in_test(maps[1]), "second HashMap is unconditional");
    }

    #[test]
    fn cfg_feature_scope_tracks_statements_and_items() {
        let src = r#"
#[cfg(feature = "trace")]
pub fn set_tracer() { attach(); }

#[cfg(not(feature = "trace"))]
pub fn set_tracer() {}

pub fn emit() {
    #[cfg(feature = "trace")]
    record_flush();
    done();
}
"#;
        let lf = LexedFile::lex(src);
        let at = |name: &str, nth: usize| {
            (0..lf.tokens.len())
                .filter(|&i| lf.is_ident(i, name))
                .nth(nth)
                .unwrap()
        };
        assert_eq!(lf.gated_on(at("attach", 0), "trace"), Some(true));
        let stub_body = at("set_tracer", 1);
        assert_eq!(lf.gated_on(stub_body, "trace"), Some(false));
        assert_eq!(lf.gated_on(at("record_flush", 0), "trace"), Some(true));
        assert_eq!(
            lf.gated_on(at("done", 0), "trace"),
            None,
            "statement-level cfg must end at the `;`"
        );
    }

    #[test]
    fn cfg_scope_survives_commas_in_generic_return_types() {
        // The comma in `Result<SimReport, SimError>` sits at the item
        // header's brace depth; it must not end the cfg region before
        // the function body binds it.
        let src = r#"
#[cfg(feature = "trace")]
pub fn traced(
    a: u32,
    b: u32,
) -> Result<Vec<u32>, String> {
    gated_body();
}
pub fn plain() { free_body(); }
"#;
        let lf = LexedFile::lex(src);
        let at = |name: &str| {
            (0..lf.tokens.len())
                .find(|&i| lf.is_ident(i, name))
                .unwrap()
        };
        assert_eq!(lf.gated_on(at("gated_body"), "trace"), Some(true));
        assert_eq!(lf.gated_on(at("free_body"), "trace"), None);
    }

    #[test]
    fn cfg_any_debug_assertions_audit_reads_as_audit_gate() {
        let src = "#[cfg(any(debug_assertions, feature = \"audit\"))]\nfn check() { ledger(); }\nfn run() { free(); }";
        let lf = LexedFile::lex(src);
        let ledger = (0..lf.tokens.len())
            .find(|&i| lf.is_ident(i, "ledger"))
            .unwrap();
        let free = (0..lf.tokens.len())
            .find(|&i| lf.is_ident(i, "free"))
            .unwrap();
        assert_eq!(lf.gated_on(ledger, "audit"), Some(true));
        assert_eq!(lf.gated_on(free, "audit"), None);
    }

    #[test]
    fn stacked_cfg_attributes_bind_to_one_item() {
        let src = "#[cfg(feature = \"a\")]\n#[cfg(feature = \"b\")]\nfn f() { inner(); }\nfn g() { outer(); }";
        let lf = LexedFile::lex(src);
        let inner = (0..lf.tokens.len())
            .find(|&i| lf.is_ident(i, "inner"))
            .unwrap();
        let outer = (0..lf.tokens.len())
            .find(|&i| lf.is_ident(i, "outer"))
            .unwrap();
        assert_eq!(lf.gated_on(inner, "a"), Some(true));
        assert_eq!(lf.gated_on(inner, "b"), Some(true));
        assert_eq!(lf.gated_on(outer, "a"), None);
        assert_eq!(lf.gated_on(outer, "b"), None);
    }

    #[test]
    fn cfg_gated_struct_field_scope_ends_at_comma() {
        let src = "struct S {\n    a: u32,\n    #[cfg(feature = \"trace\")]\n    tracer: Option<u8>,\n    b: u32,\n}";
        let lf = LexedFile::lex(src);
        let tracer = (0..lf.tokens.len())
            .find(|&i| lf.is_ident(i, "tracer"))
            .unwrap();
        let b = (0..lf.tokens.len())
            .rfind(|&i| lf.is_ident(i, "b"))
            .unwrap();
        assert_eq!(lf.gated_on(tracer, "trace"), Some(true));
        assert_eq!(lf.gated_on(b, "trace"), None);
    }

    #[test]
    fn markers_carry_rule_and_justification() {
        let lf =
            LexedFile::lex("let t = now(); // simaudit:allow(no-wall-clock): CLI progress timing");
        assert_eq!(lf.markers.len(), 1);
        assert_eq!(lf.markers[0].rule, "no-wall-clock");
        assert_eq!(lf.markers[0].line, 1);
        assert!(lf.markers[0].justification.contains("CLI progress timing"));
    }

    #[test]
    fn bare_marker_has_empty_justification() {
        let lf = LexedFile::lex("let t = now(); // simaudit:allow(no-wall-clock)");
        assert_eq!(lf.markers.len(), 1);
        assert!(lf.markers[0].justification.is_empty());
    }

    #[test]
    fn attribute_tokens_are_flagged() {
        let lf = LexedFile::lex("#[derive(Clone)]\nstruct S;\nfn f() { s.clone(); }");
        let derive_clone = (0..lf.tokens.len())
            .find(|&i| lf.is_ident(i, "Clone"))
            .unwrap();
        let call_clone = (0..lf.tokens.len())
            .find(|&i| lf.is_ident(i, "clone"))
            .unwrap();
        assert!(lf.tokens[derive_clone].in_attr);
        assert!(!lf.tokens[call_clone].in_attr);
    }
}
