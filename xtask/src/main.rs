//! `cargo xtask` — the workspace's own build/lint tool.

mod lint;

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => lint::run(&args.collect::<Vec<_>>()),
        Some(other) => {
            eprintln!("error: unknown xtask command `{other}`");
            eprintln!();
            usage();
            ExitCode::FAILURE
        }
        None => {
            usage();
            ExitCode::FAILURE
        }
    }
}

fn usage() {
    eprintln!("usage: cargo xtask <command>");
    eprintln!();
    eprintln!("commands:");
    eprintln!("  lint    run the simaudit determinism lints over crates/**/*.rs");
    eprintln!("          (see docs/STATIC_ANALYSIS.md for the rule catalogue)");
}
