//! `cargo xtask` — the workspace's own build/lint tool.

mod features;
mod lexer;
mod lint;
mod report;
mod rules;
mod wiring;

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => lint::run(&args.collect::<Vec<_>>()),
        Some(other) => {
            eprintln!("error: unknown xtask command `{other}`");
            eprintln!();
            usage();
            ExitCode::FAILURE
        }
        None => {
            usage();
            ExitCode::FAILURE
        }
    }
}

fn usage() {
    eprintln!("usage: cargo xtask <command>");
    eprintln!();
    eprintln!("commands:");
    eprintln!("  lint [--quiet] [--format json|text]");
    eprintln!("          run the simcheck passes over crates/**/*.rs: the token-level");
    eprintln!("          rules, Event/Port wiring exhaustiveness, audit/trace feature");
    eprintln!("          forwarding and cfg symmetry, and allow-marker hygiene");
    eprintln!("          (see docs/STATIC_ANALYSIS.md for the rule catalogue)");
}
