//! The five original simaudit determinism rules, re-implemented over the
//! token stream: `no-wall-clock`, `no-unordered-iteration`,
//! `no-raw-time-math`, `no-foreign-rng`, `no-unwrap-in-hot-path`.
//!
//! Token-awareness fixes the line-scanner's blind spots: identifiers in
//! strings, raw strings and comments can no longer trip a rule, and
//! method-name matches are exact (`.unwrap()` no longer matches
//! `.unwrap_or(...)` by accident of substring).

use super::{in_event_path, in_hot_path, Sink};
use crate::lexer::LexedFile;

/// Identifiers that mark a foreign randomness source.
const FOREIGN_RNG: &[&str] = &[
    "rand",
    "thread_rng",
    "ThreadRng",
    "StdRng",
    "SeedableRng",
    "gen_range",
    "gen_bool",
];

/// Runs the determinism rules over one file.
pub fn scan(rel: &str, lf: &LexedFile, sink: &mut Sink) {
    let wall_clock = rel.starts_with("crates/");
    let unordered = in_event_path(rel);
    let raw_time = rel.starts_with("crates/") && rel != "crates/desim/src/time.rs";
    let foreign_rng = rel.starts_with("crates/") && rel != "crates/desim/src/rng.rs";
    let unwrap_hot = in_hot_path(rel);

    for i in 0..lf.tokens.len() {
        let Some(word) = lf.ident(i) else {
            continue;
        };
        if lf.tokens[i].in_attr {
            continue;
        }
        let line = lf.tokens[i].line;

        if wall_clock && (word == "Instant" || word == "SystemTime") {
            sink.emit(
                "no-wall-clock",
                line,
                "host wall-clock time in simulation code; use the event \
                 clock (`netsparse_desim::SimTime`) instead"
                    .to_string(),
            );
        }

        if unordered && !lf.in_test(i) && (word == "HashMap" || word == "HashSet") {
            sink.emit(
                "no-unordered-iteration",
                line,
                "unordered hash container in an event path; iteration order \
                 is nondeterministic — use BTreeMap/BTreeSet or sort before \
                 iterating"
                    .to_string(),
            );
        }

        if raw_time {
            if word == "from_secs_f64" && lf.is_punct(i + 1, b'(') {
                sink.emit(
                    "no-raw-time-math",
                    line,
                    "ad-hoc float→time conversion outside desim::time; use \
                     `SimTime::from_ps_f64`/`SimTime::serialization` so \
                     rounding stays uniform"
                        .to_string(),
                );
            }
            // `from_ps(<expr with a float cast or rounding>)`: the cast
            // must happen through the sanctioned constructors instead.
            if word == "from_ps" && lf.is_punct(i + 1, b'(') {
                let close = lf.matching_close(i + 1);
                let mut suspicious = false;
                for j in i + 2..close {
                    if (lf.is_ident(j, "as") && lf.is_ident(j + 1, "u64"))
                        || (lf.is_punct(j, b'.') && lf.is_ident(j + 1, "round"))
                    {
                        suspicious = true;
                        break;
                    }
                }
                if suspicious {
                    sink.emit(
                        "no-raw-time-math",
                        line,
                        "ad-hoc float→time conversion outside desim::time; use \
                         `SimTime::from_ps_f64`/`SimTime::serialization` so \
                         rounding stays uniform"
                            .to_string(),
                    );
                }
            }
        }

        if foreign_rng && FOREIGN_RNG.contains(&word) {
            sink.emit(
                "no-foreign-rng",
                line,
                "randomness outside `netsparse_desim::rng`; draw from a \
                 seeded `SplitMix64` so runs stay bit-reproducible"
                    .to_string(),
            );
        }

        if unwrap_hot
            && !lf.in_test(i)
            && lf.is_punct(i.wrapping_sub(1), b'.')
            && ((word == "unwrap" && lf.is_punct(i + 1, b'(') && lf.is_punct(i + 2, b')'))
                || (word == "expect" && lf.is_punct(i + 1, b'(')))
        {
            sink.emit(
                "no-unwrap-in-hot-path",
                line,
                "unwrap/expect in a simulation hot path; propagate the error \
                 or handle the None case (panics abort multi-hour runs)"
                    .to_string(),
            );
        }
    }
}
