//! `no-debug-print`: console output does not belong in library crates.
//!
//! `println!`/`eprintln!`/`print!`/`eprint!`/`dbg!` in a library file is
//! either leftover debugging or reporting that belongs in a binary.
//! Binaries (`src/bin/`), benches and `#[cfg(test)]` code are exempt —
//! they own their stdout. Deliberate console reporting in a library
//! (e.g. a CLI helper) carries a justified allow marker.

use super::Sink;
use crate::lexer::LexedFile;

const PRINT_MACROS: &[&str] = &["println", "eprintln", "print", "eprint", "dbg"];

/// True when `rel` is library (non-bin, non-bench) source of a crate.
fn in_library(rel: &str) -> bool {
    rel.starts_with("crates/")
        && rel.contains("/src/")
        && !rel.contains("/src/bin/")
        && !rel.contains("/benches/")
}

/// Runs the debug-print rule over one file.
pub fn scan(rel: &str, lf: &LexedFile, sink: &mut Sink) {
    if !in_library(rel) {
        return;
    }
    for i in 0..lf.tokens.len() {
        let Some(word) = lf.ident(i) else {
            continue;
        };
        if PRINT_MACROS.contains(&word)
            && lf.is_punct(i + 1, b'!')
            && !lf.in_test(i)
            && !lf.tokens[i].in_attr
        {
            sink.emit(
                "no-debug-print",
                lf.tokens[i].line,
                format!(
                    "`{word}!` in library code; return the text (or use the \
                     trace/report plumbing) and let a binary own stdout — \
                     bins and tests are exempt"
                ),
            );
        }
    }
}
