//! `no-hot-alloc`: per-event allocations in the code `drive()` executes.
//!
//! The ROADMAP's engine-speed item replaces per-event allocation with
//! pooled/arena storage; this rule builds the worklist and keeps new
//! allocations from creeping in. It flags `clone()`, `Box::new`,
//! `to_vec()`, `collect`, `Vec::new` and `String::new` inside event-path
//! function bodies. Construction- and report-time functions (run once per
//! simulation, not once per event) are exempt by name via [`COLD_FNS`];
//! sites that must allocate today carry a justified
//! `simaudit:allow(no-hot-alloc)` marker, which doubles as the inventory
//! for the arena refactor.

use super::{in_hot_path, FnRegions, Sink};
use crate::lexer::LexedFile;

/// Functions that run per-simulation (setup / teardown / reporting), not
/// per-event: allocation there is cold and exempt. Names, not paths —
/// the set is small and the convention (constructors `new`/`build_*`,
/// report shaping `into_report`/`stats`, fault-time route rebuilds) is
/// stable across the event-path crates.
const COLD_FNS: &[&str] = &[
    "new",
    "try_new",
    "default",
    "with_capacity",
    "build_nodes",
    "build_racks",
    "for_rack",
    "for_nic",
    "into_report",
    "attach_tracer",
    "audit_end_of_run",
    "resolve_fault_schedule",
    "rebuild_routes",
    "apply_fault",
    "set_tracer",
    "from_tracer",
    "finish",
];

/// Construction-only files inside otherwise-hot crates: topology building
/// runs once before the first event.
const COLD_FILES: &[&str] = &["crates/netsim/src/topology.rs"];

/// Runs the allocation rule over one file.
pub fn scan(rel: &str, lf: &LexedFile, sink: &mut Sink) {
    if !in_hot_path(rel) || COLD_FILES.contains(&rel) {
        return;
    }
    let regions = FnRegions::build(lf);
    let mut flag = |i: usize, what: &str| {
        if lf.in_test(i) || lf.tokens[i].in_attr {
            return;
        }
        match regions.enclosing(i) {
            Some(name) if !COLD_FNS.contains(&name) => {
                sink.emit(
                    "no-hot-alloc",
                    lf.tokens[i].line,
                    format!(
                        "{what} in event-path fn `{name}` allocates per event; \
                         reuse a buffer or pool it (ROADMAP: event-pooling/arena \
                         item), or justify with an allow marker"
                    ),
                );
            }
            _ => {}
        }
    };
    for i in 0..lf.tokens.len() {
        let Some(word) = lf.ident(i) else {
            continue;
        };
        let after_dot = lf.is_punct(i.wrapping_sub(1), b'.');
        let path_new = |base: &str| {
            lf.is_ident(i, base)
                && lf.is_punct(i + 1, b':')
                && lf.is_punct(i + 2, b':')
                && lf.is_ident(i + 3, "new")
        };
        match word {
            "clone" if after_dot && lf.is_punct(i + 1, b'(') && lf.is_punct(i + 2, b')') => {
                flag(i, "`.clone()`");
            }
            "to_vec" if after_dot && lf.is_punct(i + 1, b'(') => {
                flag(i, "`.to_vec()`");
            }
            "collect" if after_dot && (lf.is_punct(i + 1, b'(') || lf.is_punct(i + 1, b':')) => {
                flag(i, "`.collect()`");
            }
            "Box" if path_new("Box") => flag(i, "`Box::new`"),
            "Vec" if path_new("Vec") => flag(i, "`Vec::new()`"),
            "String" if path_new("String") => flag(i, "`String::new()`"),
            _ => {}
        }
    }
}
