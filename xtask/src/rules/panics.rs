//! `no-lib-panic`: aborting macros do not belong in library crates.
//!
//! `panic!`/`unreachable!`/`todo!`/`unimplemented!` in non-test library
//! code turns a recoverable condition into a process abort — exactly
//! what the fallible entry points (`try_simulate`, `try_new`,
//! `run_guarded`) exist to avoid, and what the chaoscheck harness must
//! never hit on a generated configuration. Tests, binaries and benches
//! are exempt (a test's `panic!` *is* its failure path). A deliberate
//! abort in a library — a documented panicking wrapper over a fallible
//! API, a structurally-impossible match arm — carries a justified allow
//! marker. `assert!`-family macros are deliberately out of scope: they
//! state invariants, and the hot path has its own rules.

use super::Sink;
use crate::lexer::LexedFile;

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// True when `rel` is library (non-bin, non-bench) source of a crate.
fn in_library(rel: &str) -> bool {
    rel.starts_with("crates/")
        && rel.contains("/src/")
        && !rel.contains("/src/bin/")
        && !rel.contains("/benches/")
}

/// Runs the no-lib-panic rule over one file.
pub fn scan(rel: &str, lf: &LexedFile, sink: &mut Sink) {
    if !in_library(rel) {
        return;
    }
    for i in 0..lf.tokens.len() {
        let Some(word) = lf.ident(i) else {
            continue;
        };
        if PANIC_MACROS.contains(&word)
            && lf.is_punct(i + 1, b'!')
            && !lf.in_test(i)
            && !lf.tokens[i].in_attr
        {
            sink.emit(
                "no-lib-panic",
                lf.tokens[i].line,
                format!(
                    "`{word}!` in library code aborts the process; return a \
                     typed error (SimError / RouteError / StallReport) or \
                     justify the abort with an allow marker — bins and tests \
                     are exempt"
                ),
            );
        }
    }
}
