//! The per-file, token-level lint rules.
//!
//! Every rule walks the [`LexedFile`](crate::lexer::LexedFile) token
//! stream — comments and literal contents are already gone, `#[cfg]`
//! scopes are annotated — so a rule is a short pattern over tokens plus a
//! path-scope predicate. Cross-file passes live in
//! [`wiring`](crate::wiring) and [`features`](crate::features).

pub mod alloc;
pub mod debug_print;
pub mod determinism;
pub mod panics;

use crate::lexer::{LexedFile, Tok};
use crate::report::Diagnostic;
use std::collections::BTreeSet;

/// Runs every token-level rule over one file and returns the raw
/// (pre-suppression) findings, at most one per `(rule, line)`.
pub fn scan(rel: &str, lf: &LexedFile) -> Vec<Diagnostic> {
    let mut sink = Sink::new(rel);
    determinism::scan(rel, lf, &mut sink);
    alloc::scan(rel, lf, &mut sink);
    debug_print::scan(rel, lf, &mut sink);
    panics::scan(rel, lf, &mut sink);
    sink.diags
}

/// Diagnostic collector that deduplicates per `(rule, line)` — several
/// tokens on one line tripping the same rule report once, matching the
/// historical per-line scanner.
pub struct Sink {
    rel: String,
    seen: BTreeSet<(&'static str, usize)>,
    /// Collected findings in emission order.
    pub diags: Vec<Diagnostic>,
}

impl Sink {
    fn new(rel: &str) -> Self {
        Sink {
            rel: rel.to_string(),
            seen: BTreeSet::new(),
            diags: Vec::new(),
        }
    }

    /// Records one finding unless the `(rule, line)` pair already fired.
    pub fn emit(&mut self, rule: &'static str, line: usize, message: String) {
        if self.seen.insert((rule, line)) {
            self.diags.push(Diagnostic {
                file: self.rel.clone(),
                line,
                rule,
                message,
            });
        }
    }
}

/// The event-path files policed by ordering-, panic- and allocation-
/// sensitive rules: the componentized simulation core plus the SNIC,
/// switch and network-fabric crates — the code `drive()` executes.
pub(crate) fn in_event_path(rel: &str) -> bool {
    rel.starts_with("crates/core/src/sim/")
        || rel.starts_with("crates/snic/src/")
        || rel.starts_with("crates/switch/src/")
        || rel.starts_with("crates/netsim/src/")
}

/// Event-path files plus the engine's own event loop.
pub(crate) fn in_hot_path(rel: &str) -> bool {
    in_event_path(rel) || rel == "crates/desim/src/engine.rs"
}

/// Token index ranges of function bodies, used to attribute a finding to
/// its enclosing function (the allocation rule exempts cold
/// constructor/report functions by name).
pub(crate) struct FnRegions {
    /// `(body_start_token, body_end_token, fn_name)`, in source order.
    spans: Vec<(usize, usize, String)>,
}

impl FnRegions {
    /// Scans `lf` for `fn name(...) { ... }` items (token-level; bodies
    /// found by brace matching, declarations without bodies skipped).
    pub(crate) fn build(lf: &LexedFile) -> FnRegions {
        let mut spans = Vec::new();
        for i in 0..lf.tokens.len() {
            if !lf.is_ident(i, "fn") || lf.tokens[i].in_attr {
                continue;
            }
            let Some(name) = lf.ident(i + 1) else {
                continue; // `fn(...)` type position
            };
            let name = name.to_string();
            // Find the body `{`, skipping the signature. A `;` first
            // means a bodiless trait/extern declaration.
            let mut j = i + 2;
            let mut body = None;
            while j < lf.tokens.len() {
                match lf.tokens[j].kind {
                    Tok::Punct(b'{') => {
                        body = Some(j);
                        break;
                    }
                    Tok::Punct(b';') => break,
                    Tok::Punct(b'(') | Tok::Punct(b'[') => {
                        j = lf.matching_close(j) + 1;
                    }
                    _ => j += 1,
                }
            }
            if let Some(open) = body {
                spans.push((open, lf.matching_close(open), name));
            }
        }
        FnRegions { spans }
    }

    /// The name of the innermost function whose body contains token `i`.
    pub(crate) fn enclosing(&self, i: usize) -> Option<&str> {
        self.spans
            .iter()
            .filter(|(s, e, _)| *s <= i && i <= *e)
            .min_by_key(|(s, e, _)| e - s)
            .map(|(_, _, n)| n.as_str())
    }
}
