//! No-op `Serialize`/`Deserialize` derives for the in-tree serde stand-in.
//!
//! Each derive accepts the input item (including `#[serde(...)]` helper
//! attributes) and expands to nothing: the annotation compiles, no impl is
//! generated, and nothing in the workspace requires one. See
//! `third_party/serde/src/lib.rs` for the rationale.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
