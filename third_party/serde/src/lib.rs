//! In-tree stand-in for the `serde` facade.
//!
//! The build environment for this repository is fully offline, so the real
//! `serde` crate cannot be fetched. The workspace only uses serde for
//! `#[derive(Serialize, Deserialize)]` annotations on config/report types —
//! no code path actually serializes anything yet. This crate provides the
//! two trait names and (behind the `derive` feature) no-op derive macros so
//! those annotations keep compiling unchanged. If real serialization is
//! ever needed, point the `serde` workspace dependency back at crates.io
//! and delete `third_party/`.

#![forbid(unsafe_code)]

/// Marker trait mirroring `serde::Serialize`. No methods: nothing in this
/// workspace serializes yet, and the no-op derive emits no impl.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`. See [`Serialize`].
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
