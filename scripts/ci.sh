#!/usr/bin/env bash
# The repo's full verification gate; CI runs exactly this.
#
#   scripts/ci.sh          # everything
#   scripts/ci.sh --fast   # skip the release build (debug tests only)
#
# Steps: formatting, the simcheck static-analysis passes (see
# docs/STATIC_ANALYSIS.md) — run twice: once as `--format json` writing
# the lint_report.json artifact (kept either way, gate fails on any
# violation) and once as text for readable console diagnostics — the
# simcheck engine's own unit/fixture suite (`cargo test -p xtask`),
# clippy with the workspace deny-set, the debug test suite (runtime
# auditor active via debug_assertions), the tier-1 release build + tests,
# the fault-recovery suite under the release auditor (see
# docs/FAULTS.md), the structured-tracing suites with the `trace` feature
# on (see docs/OBSERVABILITY.md), smoke runs of the ext_fault_sweep and
# ext_trace extension experiments, the serial-vs-parallel sweep
# equivalence suite, a timed `repro_all --parallel` smoke via
# `bench_sweep`, which emits BENCH_sweep.json with serial vs parallel
# wall-clock (see docs/ARCHITECTURE.md), a timed `bench_engine` smoke
# gating events/sec against the committed BENCH_engine.json (>20%
# regression fails), the in-network reduction invariant tests plus an
# ext_reduce scenario smoke (see docs/ARCHITECTURE.md §Handler
# pipelines), and a 50-seed chaoscheck smoke plus shrinker demo emitting
# the CHAOS_report.json artifact and a 16-seed pass over the reduction
# slice of the seed space (bit 32 set) emitting CHAOS_reduce_report.json
# (see docs/FAULTS.md §Chaos testing).
set -euo pipefail
cd "$(dirname "$0")/.."

fast=0
[[ "${1:-}" == "--fast" ]] && fast=1

run() {
    echo "==> $*"
    "$@"
}

run cargo fmt --all --check
# simcheck: write the machine-readable report first (archived as a CI
# artifact whether or not the gate passes), then fail on violations with
# readable text diagnostics.
echo "==> cargo xtask lint --format json > lint_report.json"
cargo xtask lint --format json > lint_report.json || {
    cargo xtask lint
    exit 1
}
run cargo xtask lint --quiet
run cargo test -q -p xtask
run cargo clippy --workspace --all-targets -- -D warnings
run cargo test -q

if [[ "$fast" -eq 0 ]]; then
    run cargo build --release
    run cargo test -q --release
    # Fault injection + recovery with the runtime invariant auditor on
    # in release mode (debug runs already audit via debug_assertions).
    run cargo test -q -p netsparse-tests --features audit --release --test fault_recovery
    # Calendar-queue vs reference-heap engine equivalence with the release
    # auditor on: the digest comparison is only meaningful when the
    # auditor is compiled in (debug runs cover it via debug_assertions).
    run cargo test -q -p netsparse-tests --features audit --release --test engine_equivalence
    run cargo run --release -q -p netsparse-bench --bin ext_fault_sweep
    # Structured tracing: golden trace, trace-vs-metrics consistency,
    # exporter validity and the protocol property suite, with the tracer
    # and the release auditor both compiled in.
    run cargo test -q -p netsparse-tests --features "trace,audit" --release \
        --test trace_golden --test trace_consistency --test trace_exporters \
        --test protocol_properties
    run cargo run --release -q -p netsparse-bench --features trace --bin ext_trace -- --scale 0.05
    # Parallel sweeps must be byte-identical to serial at any worker
    # count, audit digests included (see docs/ARCHITECTURE.md).
    run cargo test -q -p netsparse-tests --features audit --release --test sweep_parallel
    # Timed serial-vs-parallel repro smoke: asserts byte-equality and
    # records both wall-clocks in BENCH_sweep.json.
    run cargo run --release -q -p netsparse-bench --bin bench_sweep -- --scale 0.1
    # Engine-throughput smoke: re-measures events/sec on the canonical
    # point, writes BENCH_engine.ci.json (archived like lint_report.json),
    # and fails if throughput regressed >20% vs the committed
    # BENCH_engine.json baseline.
    run cargo run --release -q -p netsparse-bench --bin bench_engine -- \
        --quick --check-against BENCH_engine.json
    # In-network reduction: the conservation/ablation invariants with the
    # release auditor on, then a scenario smoke of the ext_reduce table
    # (asserts contribution conservation in every cell).
    run cargo test -q -p netsparse-tests --features audit --release \
        --test switch_semantics --test mechanism_invariants -- reduc
    run cargo run --release -q -p netsparse-bench --bin ext_reduce -- --scale 0.1
    # Chaos smoke: 50 seeded scenarios through the oracle suite with the
    # runtime auditor on. Exits non-zero on any oracle violation or
    # liveness stall; CHAOS_report.json is archived like lint_report.json.
    # The shrink demo proves the broken fixture still reduces to a
    # minimal replayable repro (see docs/FAULTS.md §Chaos testing).
    run cargo run --release -q -p netsparse-bench --features audit --bin chaos -- \
        --seeds 50 --out CHAOS_report.json
    run cargo run --release -q -p netsparse-bench --features audit --bin chaos -- --demo-shrink
    # The reduction slice of the chaos seed space (bit 32 set): the same
    # scenario population with scatter contributions flowing, gated by
    # the reduce-conservation oracle. Separate output file so the
    # committed CHAOS_report.json stays byte-identical to the base batch.
    run cargo run --release -q -p netsparse-bench --features audit --bin chaos -- \
        --seed0 4294967296 --seeds 16 --out CHAOS_reduce_report.json
fi

echo "ci: all checks passed"
