#!/usr/bin/env bash
# The repo's full verification gate; CI runs exactly this.
#
#   scripts/ci.sh          # everything
#   scripts/ci.sh --fast   # skip the release build (debug tests only)
#
# Steps: formatting, the simaudit determinism lints (see
# docs/STATIC_ANALYSIS.md), clippy with the workspace deny-set, the debug
# test suite (runtime auditor active via debug_assertions), and the tier-1
# release build + tests.
set -euo pipefail
cd "$(dirname "$0")/.."

fast=0
[[ "${1:-}" == "--fast" ]] && fast=1

run() {
    echo "==> $*"
    "$@"
}

run cargo fmt --all --check
run cargo xtask lint
run cargo clippy --workspace --all-targets -- -D warnings
run cargo test -q

if [[ "$fast" -eq 0 ]]; then
    run cargo build --release
    run cargo test -q --release
fi

echo "ci: all checks passed"
