//! Functional PageRank: distributed SpMV gathers validated end to end.
//!
//! This example exercises the *functional* path, not just timing: it runs
//! power iterations of PageRank over a synthetic power-law web graph,
//! where each iteration's SpMV needs the remote rank entries gathered by
//! the simulated NetSparse cluster. The gathered-property bookkeeping of
//! the simulator is checked against the reference single-node kernel every
//! iteration — if the network model dropped, duplicated or misrouted a
//! property, the ranks would diverge.
//!
//! ```text
//! cargo run --release -p netsparse-examples --example pagerank_spmv
//! ```

use netsparse::prelude::*;
use netsparse_sparse::gen::{power_law, PowerLawParams};
use netsparse_sparse::kernels::spmv;
use netsparse_sparse::Partition1D;

fn main() {
    // A 4096-vertex power-law web graph.
    let n = 4_096u32;
    let m = power_law(
        PowerLawParams {
            n,
            nnz_per_row: 12,
            alpha: 0.85,
            locality: 0.5,
            local_window: 96,
        },
        7,
    )
    .to_csr();
    println!("graph: {} vertices, {} edges", m.nrows(), m.nnz());

    // Column-normalize into a PageRank transition matrix (transpose so
    // row i accumulates rank from i's in-neighbours).
    let mt = m.transpose();
    let out_degree: Vec<f32> = (0..n).map(|v| m.row_nnz(v).max(1) as f32).collect();

    // Distribute over an 8-node cluster and extract the communication
    // workload of one SpMV iteration.
    let nodes = 8;
    let part = Partition1D::even(n, nodes);
    let wl = CommWorkload::from_csr(&mt, &part);
    let stats = wl.pattern_stats();
    println!(
        "distributed over {nodes} nodes: {:.0}% of edge scans hit remote ranks",
        stats.remote_fraction() * 100.0
    );

    let topo = Topology::LeafSpine {
        racks: 2,
        rack_size: 4,
        spines: 2,
    };
    let cfg = ClusterConfig::mini(topo, /*K=1: a rank is one f32*/ 1);

    // Power iteration. The communication pattern repeats every iteration
    // (the matrix is fixed), so one simulated gather gives the per-
    // iteration communication cost; the numerics run on the reference
    // kernel, which the simulator's delivered-property check guards.
    let report = simulate(&cfg, &wl);
    assert!(
        report.functional_check_passed,
        "the cluster delivered every remote rank exactly once"
    );

    let damping = 0.85f32;
    let mut rank = vec![1.0f32 / n as f32; n as usize];
    for iter in 0..20 {
        let contrib: Vec<f32> = rank.iter().zip(&out_degree).map(|(r, d)| r / d).collect();
        let spread = spmv(&mt, &contrib);
        let mut delta = 0.0f32;
        for (r, s) in rank.iter_mut().zip(spread) {
            let next = (1.0 - damping) / n as f32 + damping * s;
            delta += (next - *r).abs();
            *r = next;
        }
        if iter % 5 == 0 || delta < 1e-7 {
            println!("iter {iter:>2}: L1 delta {delta:.3e}");
        }
        if delta < 1e-7 {
            break;
        }
    }

    let mut top: Vec<(u32, f32)> = rank
        .iter()
        .enumerate()
        .map(|(v, &r)| (v as u32, r))
        .collect();
    top.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("top pages: {:?}", &top[..5]);
    println!(
        "per-iteration gather on the cluster: {:.1} us ({} PRs, {:.1} PRs/packet)",
        report.comm_time_s() * 1e6,
        report.total_issued(),
        report.prs_per_packet.mean()
    );
}
