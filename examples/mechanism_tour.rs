//! A guided tour of the four NetSparse mechanisms.
//!
//! Starts from bare RIG offload and enables filtering, coalescing, NIC
//! concatenation and the NetSparse switch one stage at a time (the
//! paper's Table 8 ablation), narrating what each mechanism does to the
//! traffic, the packet anatomy and the runtime.
//!
//! ```text
//! cargo run --release -p netsparse-examples --example mechanism_tour
//! ```

use netsparse::prelude::*;

fn main() {
    let k = 16;
    let wl = SuiteConfig {
        matrix: SuiteMatrix::Arabic,
        nodes: 32,
        rack_size: 8,
        scale: 0.25,
        seed: 5,
    }
    .generate();
    let stats = wl.pattern_stats();
    println!(
        "arabic-like workload: {} remote refs, {} unique -> {:.0}x reuse\n",
        stats.total_remote_refs(),
        stats.total_unique_remote(),
        stats.reuse()
    );

    let topo = Topology::LeafSpine {
        racks: 4,
        rack_size: 8,
        spines: 4,
    };
    let narration = [
        "RIG offload alone: the SNIC generates PRs at line rate, but every\n  remote reference becomes a packet — traffic is full SA volume.",
        "+ Idx Filter: completed properties are never re-requested; most of\n  arabic's 26x reuse evaporates.",
        "+ Coalescing: repeats that race the outstanding request are dropped\n  too; what filtering misses in flight, the Pending PR Table catches.",
        "+ NIC concatenation: PRs to the same destination share one header;\n  packets get fatter, goodput climbs.",
        "+ NetSparse switch: cross-node concatenation and the rack-level\n  Property Cache — the full design.",
    ];
    println!(
        "{:<10} {:>10} {:>12} {:>10} {:>10} {:>11}",
        "stage", "PRs", "wire bytes", "PRs/pkt", "gput%", "comm (us)"
    );
    for (i, (name, mechanisms)) in Mechanisms::ablation_stages().into_iter().enumerate() {
        let mut cfg = ClusterConfig::mini(topo, k);
        cfg.mechanisms = mechanisms;
        let report = simulate(&cfg, &wl);
        assert!(report.functional_check_passed);
        println!(
            "{:<10} {:>10} {:>12} {:>10.1} {:>9.0}% {:>11.1}",
            name,
            report.total_issued(),
            report.total_link_bytes,
            report.prs_per_packet.mean(),
            report.tail_goodput() * 100.0,
            report.comm_time_s() * 1e6
        );
        println!("  {}\n", narration[i]);
    }
}
