//! GNN-style embedding gather: multi-iteration SpMM with sampling.
//!
//! Graph-neural-network training (the workload motivating the paper's
//! introduction) runs one SpMM per layer per minibatch, and with
//! neighbourhood sampling the sparse matrix *changes every iteration*
//! (paper §2.1). That is exactly the regime where NetSparse shines:
//! sparsity-aware software schemes that pre-filter redundant transfers
//! need preprocessing that must be redone on every new sample, while the
//! Idx Filter and Property Cache adapt at runtime for free.
//!
//! This example runs five sampled iterations of a K=64 embedding gather
//! over a uk-like power-law graph, resetting nothing between iterations
//! except what real hardware would reset (the control plane invalidates
//! the filter and cache when the input property array changes).
//!
//! ```text
//! cargo run --release -p netsparse-examples --example gnn_embedding_gather
//! ```

use netsparse::baselines::{Baselines, CommComparison};
use netsparse::prelude::*;

fn main() {
    let k = 64; // embedding width
    let topo = Topology::LeafSpine {
        racks: 4,
        rack_size: 8,
        spines: 4,
    };
    let cfg = ClusterConfig::mini(topo, k);
    let baselines = Baselines::for_line_rate(cfg.link.bandwidth_bps / 1e9);

    println!("GNN embedding gather: 5 sampled iterations, K={k} (256 B embeddings)");
    println!(
        "{:<6} {:>10} {:>10} {:>12} {:>12} {:>10}",
        "iter", "PRs", "filtered%", "comm (us)", "vs SUOpt", "vs SAOpt"
    );

    let mut total_netsparse = 0.0;
    let mut total_su = 0.0;
    for iter in 0..5u64 {
        // Each iteration samples a fresh subgraph: a new seed produces a
        // new nonzero pattern over the same vertex set.
        let wl = SuiteConfig {
            matrix: SuiteMatrix::Uk,
            nodes: 32,
            rack_size: 8,
            scale: 0.2,
            seed: 1000 + iter,
        }
        .generate();
        let report = simulate(&cfg, &wl);
        assert!(report.functional_check_passed);
        let cmp = CommComparison::new(&baselines, &wl, &report);
        total_netsparse += cmp.netsparse_time;
        total_su += cmp.su_time;
        println!(
            "{:<6} {:>10} {:>9.0}% {:>12.1} {:>11.1}x {:>9.1}x",
            iter,
            report.total_issued(),
            report.tail().fc_rate() * 100.0,
            report.comm_time_s() * 1e6,
            cmp.netsparse_over_su(),
            cmp.netsparse_over_sa()
        );
    }
    println!(
        "whole run: NetSparse {:.1} us vs SUOpt {:.1} us ({:.1}x) — with zero\nper-iteration preprocessing despite the changing sparsity pattern",
        total_netsparse * 1e6,
        total_su * 1e6,
        total_su / total_netsparse
    );
}
