//! Example binaries for the NetSparse reproduction.
//!
//! Run any of them with `cargo run --release -p netsparse-examples
//! --example <name>`:
//!
//! - `quickstart` — simulate one sparse kernel's communication on a small
//!   cluster and read the report,
//! - `gnn_embedding_gather` — a GNN-style workload: multi-iteration SpMM
//!   with a re-sampled matrix each iteration,
//! - `pagerank_spmv` — functional PageRank over a synthetic web graph,
//!   validating the distributed gather against the single-node kernel,
//! - `topology_comparison` — the same workload over Leaf-Spine, HyperX
//!   and Dragonfly,
//! - `mechanism_tour` — switch the four NetSparse mechanisms on one by
//!   one and watch traffic, goodput and runtime respond,
//! - `fault_tolerance` — inject packet loss and watch the §7.1 RIG
//!   watchdog restore exactly-once delivery.
