//! In-network reduction of SpMM scatter contributions, end to end.
//!
//! Distributed SpMM has a scatter half that mirrors the gather this
//! repository models: every nonzero a node processes contributes a
//! partial row sum that must reach the row's owner. This example turns
//! the extension on over an arabic-like workload and compares three
//! transports — no contributions at all (the pre-extension baseline),
//! contributions shipped unmerged (software reduction), and switch-side
//! merging in the source ToR's partial-sum table (in-network
//! reduction) — then checks the books: contribution counts and value
//! sums are conserved exactly, and the merged transport lands strictly
//! fewer Partial bytes on the root downlinks.
//!
//! ```text
//! cargo run --release -p netsparse-examples --example spmm_reduction
//! ```

use netsparse::prelude::*;

fn main() {
    let k = 16;
    let topo = Topology::LeafSpine {
        racks: 4,
        rack_size: 8,
        spines: 4,
    };
    let wl = SuiteConfig {
        matrix: SuiteMatrix::Arabic,
        nodes: 32,
        rack_size: 8,
        scale: 0.25,
        seed: 5,
    }
    .generate();
    println!(
        "arabic-like workload: {} remote refs across {} nodes\n",
        wl.pattern_stats().total_remote_refs(),
        wl.nodes()
    );

    let transports = [
        ("disabled", ReduceConfig::disabled()),
        ("software", ReduceConfig::software_baseline()),
        ("in-network", ReduceConfig::in_network()),
    ];
    println!(
        "{:<11} {:>11} {:>13} {:>13} {:>9} {:>11}",
        "transport", "comm (us)", "root PRs", "root KB", "merges", "conserved"
    );
    let mut root_bytes = Vec::new();
    for (name, reduce) in transports {
        let mut cfg = ClusterConfig::mini(topo, k);
        cfg.reduce = reduce;
        let report = simulate(&cfg, &wl);
        assert!(report.functional_check_passed);
        match report.reduce.as_ref() {
            None => {
                assert!(!reduce.enabled);
                println!(
                    "{:<11} {:>11.1} {:>13} {:>13} {:>9} {:>11}",
                    name,
                    report.comm_time_s() * 1e6,
                    "-",
                    "-",
                    "-",
                    "-"
                );
            }
            Some(rr) => {
                assert!(rr.conserved(), "contribution books must balance: {rr:?}");
                assert_eq!(rr.contribs_dropped, 0, "lossless run drops nothing");
                println!(
                    "{:<11} {:>11.1} {:>13} {:>13.1} {:>9} {:>11}",
                    name,
                    report.comm_time_s() * 1e6,
                    rr.partial_prs_at_root,
                    rr.root_wire_bytes as f64 / 1024.0,
                    rr.merges,
                    "yes"
                );
                root_bytes.push((name, rr.root_wire_bytes, rr.merges));
            }
        }
    }

    let (_, sw_bytes, sw_merges) = root_bytes[0];
    let (_, in_bytes, in_merges) = root_bytes[1];
    assert_eq!(sw_merges, 0, "the software baseline never folds in-network");
    assert!(in_merges > 0, "rack-mates share rows, so the ToR must fold");
    assert!(
        in_bytes < sw_bytes,
        "in-network reduction must shrink root downlink traffic"
    );
    println!(
        "\nin-network reduction folded {} contributions in the ToRs and cut\nroot-downlink Partial traffic by {:.1}% at identical delivered sums.",
        in_merges,
        100.0 * (1.0 - in_bytes as f64 / sw_bytes as f64)
    );
}
