//! The same workload over the paper's three 128-node topologies (§9.6).
//!
//! NetSparse is designed against a Leaf-Spine fabric but deploys on
//! anything with deterministic routing; the paper shows HyperX and
//! Dragonfly results in Figure 22. This example runs one matrix across
//! all three networks and reports how hop counts and edge-switch grouping
//! (16-node racks vs 4-node switch groups) move the numbers.
//!
//! ```text
//! cargo run --release -p netsparse-examples --example topology_comparison
//! ```

use netsparse::experiments::{figure22_topologies, Experiment};
use netsparse::prelude::*;

fn main() {
    let k = 16;
    let e = Experiment::new(SuiteMatrix::Stokes, 0.5, 11);
    println!(
        "stokes workload on 128 nodes, K={k}: {:.1}% remote refs",
        e.wl.pattern_stats().remote_fraction() * 100.0
    );
    println!(
        "{:<12} {:>8} {:>12} {:>12} {:>12} {:>12}",
        "topology", "groups", "comm (us)", "vs SUOpt", "cache hit%", "PRs/pkt"
    );
    for (name, topo) in figure22_topologies() {
        let cfg = ClusterConfig::mini(topo, k);
        let (cmp, report) = e.compare(&cfg);
        println!(
            "{:<12} {:>8} {:>12.1} {:>11.1}x {:>11.0}% {:>12.1}",
            name,
            topo.switches(),
            report.comm_time_s() * 1e6,
            cmp.netsparse_over_su(),
            report.cache_hit_rate() * 100.0,
            report.prs_per_packet.mean()
        );
    }
    println!(
        "\n(paper's observation: performance stays high on all three, but\n stokes loses >2x on HyperX from the extra hops — watch the comm\n column grow with network diameter)"
    );
}
