//! Quickstart: simulate one distributed sparse kernel's communication.
//!
//! Builds a 32-node leaf-spine cluster, generates an arabic-like (web
//! crawl) communication workload, runs the NetSparse simulation at K=16,
//! and prints the headline numbers next to the SUOpt/SAOpt baselines.
//!
//! ```text
//! cargo run --release -p netsparse-examples --example quickstart
//! ```

use netsparse::baselines::{Baselines, CommComparison};
use netsparse::prelude::*;

fn main() {
    // 1. A workload: node-local idx streams with arabic-2005's
    //    communication signature, scaled to laptop size.
    let wl = SuiteConfig {
        matrix: SuiteMatrix::Arabic,
        nodes: 32,
        rack_size: 8,
        scale: 0.25,
        seed: 42,
    }
    .generate();
    let stats = wl.pattern_stats();
    println!(
        "workload: {} nodes, {} nonzeros, {:.1}% remote refs, reuse {:.1}x",
        wl.nodes(),
        wl.total_nnz(),
        stats.remote_fraction() * 100.0,
        stats.reuse()
    );

    // 2. A cluster: 4 racks of 8 under the scaled `mini` profile.
    let topo = Topology::LeafSpine {
        racks: 4,
        rack_size: 8,
        spines: 4,
    };
    let cfg = ClusterConfig::mini(topo, /*K=*/ 16);

    // 3. Simulate the communication phase.
    let report = simulate(&cfg, &wl);
    assert!(report.functional_check_passed, "every node got its data");
    println!(
        "netsparse: comm {:.1} us | {} events | F+C {:.0}% | {:.1} PRs/pkt | cache hits {:.0}%",
        report.comm_time_s() * 1e6,
        report.events,
        report.tail().fc_rate() * 100.0,
        report.prs_per_packet.mean(),
        report.cache_hit_rate() * 100.0
    );
    println!(
        "tail node: goodput {:.0}% of line rate, utilization {:.0}%",
        report.tail_goodput() * 100.0,
        report.tail_line_utilization() * 100.0
    );

    // 4. Compare with the software baselines on the same wire.
    let baselines = Baselines::for_line_rate(cfg.link.bandwidth_bps / 1e9);
    let cmp = CommComparison::new(&baselines, &wl, &report);
    println!(
        "speedup over SUOpt: {:.1}x | over SAOpt: {:.1}x",
        cmp.netsparse_over_su(),
        cmp.netsparse_over_sa()
    );
}
