//! Fault tolerance in action: packet loss and the RIG watchdog (§7.1).
//!
//! NetSparse targets a lossless RDMA fabric, so packet loss models rare
//! hardware failures. Detection is a per-RIG-operation watchdog: on
//! timeout the operation fails, its partially gathered buffer is
//! discarded, and the host reissues it. This example injects increasing
//! loss rates and shows (a) delivery stays exactly-once, and (b) what
//! whole-command retry costs — the reason the paper scopes recovery to
//! rare failures.
//!
//! ```text
//! cargo run --release -p netsparse-examples --example fault_tolerance
//! ```

use netsparse::config::FaultConfig;
use netsparse::prelude::*;

fn main() {
    let wl = SuiteConfig {
        matrix: SuiteMatrix::Queen,
        nodes: 32,
        rack_size: 8,
        scale: 0.2,
        seed: 99,
    }
    .generate();
    let topo = Topology::LeafSpine {
        racks: 4,
        rack_size: 8,
        spines: 4,
    };
    println!("queen-like workload, 32 nodes, K=16, watchdog 50 us\n");
    println!(
        "{:>10} {:>10} {:>10} {:>12} {:>12}",
        "loss/hop", "dropped", "retries", "comm (us)", "slowdown"
    );
    let mut base = 0.0f64;
    for loss in [0.0, 0.001, 0.005, 0.02] {
        let mut cfg = ClusterConfig::mini(topo, 16);
        cfg.faults = FaultConfig::builder()
            .bernoulli_loss(loss)
            .watchdog_ns(50_000)
            .seed(4)
            .build()
            .expect("sweep config is valid");
        let report = simulate(&cfg, &wl);
        assert!(
            report.functional_check_passed,
            "every property must still arrive exactly once"
        );
        if loss == 0.0 {
            base = report.comm_time_s();
        }
        let retries: u64 = report.nodes.iter().map(|n| n.watchdog_retries).sum();
        println!(
            "{:>9.1}% {:>10} {:>10} {:>12.1} {:>11.1}x",
            loss * 100.0,
            report.dropped_packets,
            retries,
            report.comm_time_s() * 1e6,
            report.comm_time_s() / base
        );
    }
    println!("\nevery run passed the exactly-once delivery check: lost packets");
    println!("were detected by command watchdogs and their data re-fetched");
}
