//! Determinism regression: two same-seed end-to-end cluster simulations
//! must be bit-identical — same metrics, and (when auditing is compiled
//! in) the same event-stream digest from the engine's auditor.
//!
//! This is the strongest cheap check against nondeterminism creeping back
//! into the stack (unordered map iteration, wall-clock leakage, foreign
//! RNGs): any divergence in event timing or ordering changes the digest.

use netsparse::{simulate, ClusterConfig, SimReport};
use netsparse_netsim::Topology;
use netsparse_sparse::suite::SuiteConfig;
use netsparse_sparse::SuiteMatrix;

fn run(seed: u64) -> SimReport {
    let topo = Topology::LeafSpine {
        racks: 2,
        rack_size: 4,
        spines: 2,
    };
    let wl = SuiteConfig {
        matrix: SuiteMatrix::Uk,
        nodes: 8,
        rack_size: 4,
        scale: 0.1,
        seed,
    }
    .generate();
    let cfg = ClusterConfig::mini(topo, 16);
    simulate(&cfg, &wl)
}

fn assert_identical(a: &SimReport, b: &SimReport) {
    assert_eq!(a.comm_time, b.comm_time, "comm_time diverged");
    assert_eq!(a.events, b.events, "event count diverged");
    assert_eq!(
        a.total_link_bytes, b.total_link_bytes,
        "link bytes diverged"
    );
    assert_eq!(a.cache_lookups, b.cache_lookups, "cache lookups diverged");
    assert_eq!(a.cache_hits, b.cache_hits, "cache hits diverged");
    assert_eq!(
        a.max_link_backlog_bytes, b.max_link_backlog_bytes,
        "backlog diverged"
    );
    for (x, y) in a.nodes.iter().zip(&b.nodes) {
        assert_eq!(x.finish, y.finish, "node finish time diverged");
        assert_eq!(x.issued, y.issued, "node issue count diverged");
        assert_eq!(x.responses, y.responses, "node response count diverged");
    }
    // The engine digest folds every (time, seq) pair delivered: equality
    // means the two event streams were identical, not merely that the
    // summary statistics agree.
    assert_eq!(a.audit_digest, b.audit_digest, "event digest diverged");
}

#[test]
fn same_seed_runs_are_bit_identical() {
    let a = run(7);
    let b = run(7);
    assert!(a.functional_check_passed && b.functional_check_passed);
    assert_identical(&a, &b);
}

#[test]
fn different_seeds_diverge() {
    // Guard against the digest being vacuous (e.g. always None/0): two
    // different workload seeds must produce different event streams.
    let a = run(7);
    let b = run(8);
    assert!(
        a.events != b.events || a.comm_time != b.comm_time || a.audit_digest != b.audit_digest,
        "different seeds produced indistinguishable runs"
    );
}

#[test]
fn digest_present_when_auditing() {
    // Debug builds (and `--features audit`) compile the auditor in; the
    // report must then carry a digest covering every processed event.
    let r = run(7);
    if cfg!(any(debug_assertions, feature = "audit")) {
        assert!(
            r.audit_digest.is_some(),
            "auditor compiled in but no digest"
        );
    }
    assert!(r.events > 0);
}
