//! A minimal recursive-descent JSON parser for exporter-validity tests.
//!
//! The workspace's `serde` is a no-op stub (no `serde_json`), so the
//! Chrome trace exporter hand-emits JSON and this module hand-parses it
//! back. It supports the full JSON grammar the exporter can produce:
//! objects, arrays, strings with `\"`/`\\`/`\uXXXX` escapes, numbers,
//! booleans and null. It is a test utility, not a general-purpose parser:
//! errors abort with a descriptive panic rather than a recoverable error.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string literal.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; `BTreeMap` keeps iteration deterministic.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The value as an object, panicking otherwise.
    pub fn obj(&self) -> &BTreeMap<String, Value> {
        match self {
            Value::Obj(m) => m,
            other => panic!("expected object, got {other:?}"),
        }
    }

    /// The value as an array, panicking otherwise.
    pub fn arr(&self) -> &[Value] {
        match self {
            Value::Arr(v) => v,
            other => panic!("expected array, got {other:?}"),
        }
    }

    /// The value as a string, panicking otherwise.
    pub fn str(&self) -> &str {
        match self {
            Value::Str(s) => s,
            other => panic!("expected string, got {other:?}"),
        }
    }

    /// The value as a number, panicking otherwise.
    pub fn num(&self) -> f64 {
        match self {
            Value::Num(n) => *n,
            other => panic!("expected number, got {other:?}"),
        }
    }

    /// Object field lookup, panicking when missing.
    pub fn get(&self, key: &str) -> &Value {
        self.obj()
            .get(key)
            .unwrap_or_else(|| panic!("missing key {key:?}"))
    }
}

/// Parses `text` as a single JSON document.
///
/// # Panics
///
/// Panics on any syntax error or trailing garbage.
pub fn parse(text: &str) -> Value {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value();
    p.skip_ws();
    assert!(p.pos == p.bytes.len(), "trailing garbage at byte {}", p.pos);
    v
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> u8 {
        *self
            .bytes
            .get(self.pos)
            .unwrap_or_else(|| panic!("unexpected end of input at byte {}", self.pos))
    }

    fn expect(&mut self, b: u8) {
        let got = self.peek();
        assert!(
            got == b,
            "expected {:?} at byte {}, got {:?}",
            b as char,
            self.pos,
            got as char
        );
        self.pos += 1;
    }

    fn value(&mut self) -> Value {
        self.skip_ws();
        match self.peek() {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Value::Str(self.string()),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'n' => self.literal("null", Value::Null),
            _ => self.number(),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Value {
        let end = self.pos + word.len();
        assert!(
            self.bytes.get(self.pos..end) == Some(word.as_bytes()),
            "bad literal at byte {}",
            self.pos
        );
        self.pos = end;
        v
    }

    fn object(&mut self) -> Value {
        self.expect(b'{');
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == b'}' {
            self.pos += 1;
            return Value::Obj(map);
        }
        loop {
            self.skip_ws();
            let key = self.string();
            self.skip_ws();
            self.expect(b':');
            let val = self.value();
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Value::Obj(map);
                }
                other => panic!("expected ',' or '}}', got {:?}", other as char),
            }
        }
    }

    fn array(&mut self) -> Value {
        self.expect(b'[');
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == b']' {
            self.pos += 1;
            return Value::Arr(items);
        }
        loop {
            items.push(self.value());
            self.skip_ws();
            match self.peek() {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Value::Arr(items);
                }
                other => panic!("expected ',' or ']', got {:?}", other as char),
            }
        }
    }

    fn string(&mut self) -> String {
        self.expect(b'"');
        let mut out = String::new();
        loop {
            let b = self.peek();
            self.pos += 1;
            match b {
                b'"' => return out,
                b'\\' => {
                    let esc = self.peek();
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .expect("bad \\u escape");
                            let code = u32::from_str_radix(hex, 16).expect("bad \\u escape");
                            self.pos += 4;
                            out.push(char::from_u32(code).expect("non-BMP \\u escape"));
                        }
                        other => panic!("bad escape \\{:?}", other as char),
                    }
                }
                _ => {
                    // Multi-byte UTF-8: copy the whole scalar through.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    self.pos = start + width;
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .expect("invalid UTF-8 in string"),
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Value {
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        Value::Num(
            text.parse()
                .unwrap_or_else(|_| panic!("bad number {text:?} at byte {start}")),
        )
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v = parse(r#"{"a":[1,2.5,-3e2],"b":{"c":"x\ny","d":true,"e":null}}"#);
        assert_eq!(v.get("a").arr()[1].num(), 2.5);
        assert_eq!(v.get("a").arr()[2].num(), -300.0);
        assert_eq!(v.get("b").get("c").str(), "x\ny");
        assert_eq!(v.get("b").get("d"), &Value::Bool(true));
        assert_eq!(v.get("b").get("e"), &Value::Null);
    }

    #[test]
    fn parses_unicode_escapes_and_raw_utf8() {
        let v = parse(r#"["µs","\u00b5s"]"#);
        assert_eq!(v.arr()[0].str(), "µs");
        assert_eq!(v.arr()[1].str(), "µs");
    }

    #[test]
    #[should_panic(expected = "trailing garbage")]
    fn rejects_trailing_garbage() {
        parse("{} x");
    }
}
