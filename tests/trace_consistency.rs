//! Trace-vs-metrics consistency: replaying the structured trace must
//! reproduce the simulator's own counters. The trace and the `SimReport`
//! are computed by *independent* code paths (per-record emission vs
//! accumulated statistics), so agreement here means neither side is
//! silently miscounting — the observability layer is a checksum on the
//! metrics layer and vice versa.
//!
//! Run with `--features "trace,audit"` so the release-mode auditor is
//! active alongside the tracer (CI does; see `scripts/ci.sh`).

use netsparse::config::FaultConfig;
use netsparse::prelude::*;
use netsparse::simulate_traced;
use netsparse_desim::trace::ReplayCounters;
use netsparse_desim::TraceConfig;

fn topo() -> Topology {
    Topology::LeafSpine {
        racks: 2,
        rack_size: 4,
        spines: 2,
    }
}

fn workload(seed: u64) -> CommWorkload {
    SuiteConfig {
        matrix: SuiteMatrix::Uk,
        nodes: 8,
        rack_size: 4,
        scale: 0.1,
        seed,
    }
    .generate()
}

fn traced(cfg: &ClusterConfig, wl: &CommWorkload) -> (SimReport, ReplayCounters) {
    let report = simulate_traced(cfg, wl, TraceConfig::default());
    let tr = report.trace.as_ref().expect("traced run carries a trace");
    assert_eq!(
        tr.buffer.dropped(),
        0,
        "test scale must not overflow the buffer"
    );
    let counters = ReplayCounters::replay(tr.buffer.records());
    (report, counters)
}

/// The cross-checks that hold for every run, faulted or not.
fn assert_consistent(r: &SimReport, c: &ReplayCounters) {
    let sum =
        |f: fn(&netsparse::metrics::NodeReport) -> u64| -> u64 { r.nodes.iter().map(f).sum() };
    assert_eq!(c.prs_issued, sum(|n| n.issued), "issued PRs");
    assert_eq!(c.filter_hits, sum(|n| n.filtered), "filter hits");
    assert_eq!(c.coalesced, sum(|n| n.coalesced), "coalesced idxs");
    assert_eq!(c.stalls, sum(|n| n.stalls), "stall events");
    // Every response PR is traced exactly once, as resolved or stale.
    assert_eq!(
        c.prs_resolved + c.stale_responses,
        sum(|n| n.responses),
        "responses"
    );
    assert_eq!(c.cache_lookups, r.cache_lookups, "cache lookups");
    assert_eq!(c.cache_hits, r.cache_hits, "cache hits");
    assert_eq!(
        c.cache_misses,
        r.cache_lookups - r.cache_hits,
        "cache misses"
    );
    // Concatenation: one flush record per packet the histogram saw,
    // carrying exactly the histogram's PR total.
    assert_eq!(c.flushes, r.prs_per_packet.count(), "flush count");
    assert_eq!(c.flushed_prs, r.prs_per_packet.sum(), "flushed PRs");
    // Only network links are traced, so the byte totals line up 1:1.
    assert_eq!(c.link_bytes, r.total_link_bytes, "link bytes");
    assert_eq!(
        c.watchdog_retries,
        sum(|n| n.watchdog_retries),
        "watchdog retries"
    );
}

#[test]
fn fault_free_trace_replays_to_the_report() {
    let wl = workload(7);
    let cfg = ClusterConfig::mini(topo(), 16);
    let (r, c) = traced(&cfg, &wl);
    assert!(r.functional_check_passed);
    assert_consistent(&r, &c);
    // Fault-free: every command completes, nothing drops, nothing stale.
    assert_eq!(c.cmds_issued, c.cmds_completed, "command lifecycle");
    assert!(c.cmds_issued > 0);
    assert_eq!(c.dropped_loss + c.dropped_dead, 0);
    assert_eq!(c.stale_responses, 0);
    assert_eq!(c.fault_transitions, 0);
    // Untraced runs of the same workload produce the same metrics: the
    // tracer observes, never perturbs.
    let plain = netsparse::simulate(&cfg, &wl);
    assert_eq!(
        plain.comm_time, r.comm_time,
        "tracing changed the simulation"
    );
    assert_eq!(plain.events, r.events);
    assert_eq!(plain.total_link_bytes, r.total_link_bytes);
}

#[test]
fn lossy_trace_replays_to_the_fault_report() {
    let wl = workload(9);
    let mut cfg = ClusterConfig::mini(topo(), 16);
    cfg.faults = FaultConfig::builder()
        .bernoulli_loss(0.02)
        .watchdog_ns(100_000)
        .seed(7)
        .build()
        .expect("test fault config is valid");
    let (r, c) = traced(&cfg, &wl);
    assert!(r.functional_check_passed);
    assert_consistent(&r, &c);
    let fr = r
        .faults
        .as_ref()
        .expect("faulted run carries a fault report");
    assert!(c.dropped_loss > 0, "loss must actually occur");
    assert_eq!(c.dropped_loss, fr.dropped_loss, "loss drops");
    assert_eq!(c.dropped_dead, fr.dropped_dead, "dead drops");
    assert_eq!(c.watchdog_retries, fr.watchdog_retries, "retries");
    assert_eq!(c.abandoned_prs, fr.abandoned_prs, "abandoned PRs");
    assert_eq!(c.stale_responses, fr.stale_responses, "stale responses");
    assert_eq!(c.fault_transitions, fr.fault_transitions, "transitions");
}

#[test]
fn consistency_holds_across_seeds() {
    for seed in [3, 5] {
        let wl = workload(seed);
        let (r, c) = traced(&ClusterConfig::mini(topo(), 16), &wl);
        assert!(r.functional_check_passed, "seed {seed}");
        assert_consistent(&r, &c);
    }
}
