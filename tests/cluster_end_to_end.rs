//! End-to-end cluster simulations across matrices, property sizes,
//! topologies and mechanism sets: the whole stack must deliver every
//! needed property exactly once and behave deterministically.

use netsparse::prelude::*;

fn cluster_32() -> Topology {
    Topology::LeafSpine {
        racks: 4,
        rack_size: 8,
        spines: 4,
    }
}

fn workload(m: SuiteMatrix, seed: u64) -> CommWorkload {
    SuiteConfig {
        matrix: m,
        nodes: 32,
        rack_size: 8,
        scale: 0.05,
        seed,
    }
    .generate()
}

#[test]
fn all_matrices_functionally_correct_at_k16() {
    for m in SuiteMatrix::ALL {
        let wl = workload(m, 1);
        let cfg = ClusterConfig::mini(cluster_32(), 16);
        let report = simulate(&cfg, &wl);
        assert!(
            report.functional_check_passed,
            "{m}: some node missed or duplicated a property"
        );
        assert!(report.comm_time_s() > 0.0, "{m}: zero communication time");
        // Conservation: every issued PR got exactly one response.
        let issued: u64 = report.nodes.iter().map(|n| n.issued).sum();
        let responses: u64 = report.nodes.iter().map(|n| n.responses).sum();
        assert_eq!(issued, responses, "{m}: PR/response conservation violated");
    }
}

#[test]
fn all_property_sizes_work() {
    let wl = workload(SuiteMatrix::Stokes, 2);
    for k in [1u32, 4, 16, 64, 128] {
        let cfg = ClusterConfig::mini(cluster_32(), k);
        let report = simulate(&cfg, &wl);
        assert!(report.functional_check_passed, "K={k}");
        assert_eq!(report.k, k);
    }
}

#[test]
fn all_topologies_deliver_everything() {
    // 128-node topologies need a 128-node workload.
    let wl = SuiteConfig {
        matrix: SuiteMatrix::Uk,
        nodes: 128,
        rack_size: 16,
        scale: 0.02,
        seed: 3,
    }
    .generate();
    for topo in [
        Topology::leaf_spine_128(),
        Topology::hyperx_128(),
        Topology::dragonfly_128(),
    ] {
        let cfg = ClusterConfig::mini(topo, 16);
        let report = simulate(&cfg, &wl);
        assert!(report.functional_check_passed, "{topo:?}");
    }
}

#[test]
fn every_mechanism_combination_is_functionally_correct() {
    let wl = workload(SuiteMatrix::Arabic, 4);
    for bits in 0u32..32 {
        let mechanisms = Mechanisms {
            filter: bits & 1 != 0,
            coalesce: bits & 2 != 0,
            nic_concat: bits & 4 != 0,
            switch_concat: bits & 8 != 0,
            property_cache: bits & 16 != 0,
        };
        let mut cfg = ClusterConfig::mini(cluster_32(), 16);
        cfg.mechanisms = mechanisms;
        let report = simulate(&cfg, &wl);
        assert!(
            report.functional_check_passed,
            "combination {mechanisms:?} broke delivery"
        );
    }
}

#[test]
fn simulation_is_deterministic_across_runs() {
    let wl = workload(SuiteMatrix::Queen, 5);
    let cfg = ClusterConfig::mini(cluster_32(), 16);
    let a = simulate(&cfg, &wl);
    let b = simulate(&cfg, &wl);
    assert_eq!(a.comm_time, b.comm_time);
    assert_eq!(a.events, b.events);
    assert_eq!(a.total_link_bytes, b.total_link_bytes);
    assert_eq!(a.cache_hits, b.cache_hits);
    for (x, y) in a.nodes.iter().zip(&b.nodes) {
        assert_eq!(x.finish, y.finish);
        assert_eq!(x.issued, y.issued);
    }
}

#[test]
fn paper_profile_also_runs() {
    // The Table 5 (400 Gbps) profile must work too, not just `mini`.
    let wl = workload(SuiteMatrix::Europe, 6);
    let mut cfg = ClusterConfig::paper(cluster_32(), 16);
    cfg.batch_size = 2048; // paper batches exceed this tiny stream
    let report = simulate(&cfg, &wl);
    assert!(report.functional_check_passed);
}

#[test]
fn zero_remote_workload_finishes_instantly() {
    // A workload with only local references communicates nothing.
    let part = netsparse_sparse::Partition1D::even(32 * 8, 32);
    let streams: Vec<Vec<u32>> = (0..32)
        .map(|p| {
            let r = part.range(p);
            (0..50).map(|i| r.start + (i % (r.end - r.start))).collect()
        })
        .collect();
    let wl = CommWorkload::from_streams(part, vec![8; 32], streams);
    let cfg = ClusterConfig::mini(cluster_32(), 16);
    let report = simulate(&cfg, &wl);
    assert!(report.functional_check_passed);
    assert_eq!(report.total_issued(), 0);
    assert_eq!(report.total_link_bytes, 0);
}

#[test]
fn tail_node_determines_comm_time() {
    let wl = workload(SuiteMatrix::Uk, 7);
    let cfg = ClusterConfig::mini(cluster_32(), 16);
    let report = simulate(&cfg, &wl);
    let max_finish = report.nodes.iter().map(|n| n.finish).max().unwrap();
    assert_eq!(report.comm_time, max_finish);
    assert_eq!(report.nodes[report.tail_node()].finish, max_finish);
}

#[test]
fn active_nodes_curve_is_monotone_decreasing() {
    let wl = workload(SuiteMatrix::Arabic, 8);
    let cfg = ClusterConfig::mini(cluster_32(), 16);
    let report = simulate(&cfg, &wl);
    let curve = report.active_nodes_curve(16);
    for w in curve.windows(2) {
        assert!(w[0] >= w[1], "active nodes increased over time: {curve:?}");
    }
    assert!(curve[0] > 0);
}

#[test]
fn pr_latency_percentiles_are_sane() {
    let wl = workload(SuiteMatrix::Arabic, 10);
    let cfg = ClusterConfig::mini(cluster_32(), 16);
    let report = simulate(&cfg, &wl);
    let p50 = report.pr_latency_quantile(0.5).expect("PRs completed");
    let p99 = report.pr_latency_quantile(0.99).expect("PRs completed");
    assert!(p50 <= p99);
    // A round trip can never beat the zero-load path: two links each way
    // plus one switch traversal (intra-rack minimum).
    let min_rtt = netsparse_desim::SimTime::from_ns(2 * (2 * 45 + 30));
    assert!(p50 >= min_rtt, "p50 {p50} below zero-load RTT {min_rtt}");
    // And it stays below the whole kernel duration.
    assert!(p99 <= report.comm_time);
}

#[test]
fn hot_links_and_backlog_are_reported() {
    let wl = workload(SuiteMatrix::Stokes, 11);
    let cfg = ClusterConfig::mini(cluster_32(), 16);
    let report = simulate(&cfg, &wl);
    assert!(!report.hot_links.is_empty());
    // Ranked most-loaded first.
    for w in report.hot_links.windows(2) {
        assert!(w[0].bytes >= w[1].bytes);
    }
    let top = &report.hot_links[0];
    assert!(top.utilization > 0.0 && top.utilization <= 1.0);
    assert!(top.from.starts_with("nic") || top.from.starts_with("switch"));
    // Lossless assumption audit: worst backlog far under the 96 MB
    // switch packet buffer.
    assert!(report.max_link_backlog_bytes < 96 << 20);
}
