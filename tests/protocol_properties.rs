//! Property-based tests over the substrate components: protocol
//! accounting, concatenation, filtering, caching, partitioning and routing
//! must hold their invariants for randomized inputs.
//!
//! Inputs are drawn from a seeded [`SplitMix64`] (the workspace's only
//! sanctioned randomness source) rather than proptest, so every run of this
//! suite exercises exactly the same cases — failures reproduce by name, no
//! shrinking or persistence files needed.

use netsparse_desim::{SimTime, SplitMix64};
use netsparse_netsim::{Network, Topology};
use netsparse_snic::{ConcatConfig, Concatenator, HeaderSpec, IdxFilter, Pr, PrKind};
use netsparse_sparse::Partition1D;
use netsparse_switch::{PropertyCache, PropertyCacheConfig};

/// Runs `body` for `cases` randomized cases, seeding each case's generator
/// from `seed` and the case index so cases are independent and any single
/// one can be replayed in isolation.
fn for_cases(seed: u64, cases: u64, mut body: impl FnMut(&mut SplitMix64)) {
    for case in 0..cases {
        let mut rng = SplitMix64::new(seed ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        body(&mut rng);
    }
}

#[test]
fn packet_bytes_are_consistent() {
    for_cases(0x01, 256, |rng| {
        let n_prs = rng.range_u32(1, 200);
        let payload = rng.range_u32(0, 2_048);
        let h = HeaderSpec::paper();
        let merged = h.packet_bytes(n_prs, payload);
        let separate: u64 = (0..n_prs).map(|_| h.packet_bytes(1, payload)).sum();
        // Concatenation can only save header bytes, exactly (n-1) shared
        // per-packet headers' worth.
        assert_eq!(
            separate - merged,
            (n_prs as u64 - 1) * h.per_packet() as u64
        );
        // A packet always carries its payloads.
        assert!(merged >= n_prs as u64 * payload as u64);
    });
}

#[test]
fn prs_per_mtu_fits() {
    for_cases(0x02, 256, |rng| {
        let mtu = rng.range_u32(100, 9_000);
        let payload = rng.range_u32(0, 1_024);
        let h = HeaderSpec::paper();
        let n = h.prs_per_mtu(mtu, payload);
        assert!(n >= 1);
        if n > 1 {
            // n PRs fit; n+1 would not.
            assert!(h.packet_bytes(n, payload) <= mtu as u64);
            assert!(h.packet_bytes(n + 1, payload) > mtu as u64);
        }
    });
}

#[test]
fn concatenator_never_loses_or_duplicates_prs() {
    for_cases(0x03, 128, |rng| {
        let n_pushes = rng.range_u32(1, 300) as usize;
        let delay_ns = rng.range_u64(1, 2_000);
        let cfg = ConcatConfig {
            headers: HeaderSpec::paper(),
            mtu: 1_500,
            delay: SimTime::from_ns(delay_ns),
            enabled: true,
        };
        let mut c = Concatenator::new(cfg);
        let mut emitted: Vec<Pr> = Vec::new();
        let mut pushed = 0u32;
        for i in 0..n_pushes {
            let dest = rng.range_u32(0, 8);
            let kind = if rng.next_bool() {
                PrKind::Read
            } else {
                PrKind::Response
            };
            let t = rng.range_u64(0, 2_000);
            let payload = if kind == PrKind::Read { 0 } else { 64 };
            let pr = Pr {
                src_node: 99,
                src_tid: 0,
                idx: i as u32,
                req_id: i as u32,
            };
            pushed += 1;
            if let Some(p) = c.push(SimTime::from_ns(t), dest, kind, pr, payload) {
                assert!(p.wire_bytes <= 1_500);
                emitted.extend(p.prs);
            }
            c.flush_expired_with(SimTime::from_ns(t), |p| {
                emitted.extend(p.prs);
            });
        }
        for p in c.flush_all() {
            emitted.extend(p.prs);
        }
        // Exactly-once delivery: every pushed PR emitted exactly once.
        assert_eq!(emitted.len() as u32, pushed);
        let mut ids: Vec<u32> = emitted.iter().map(|p| p.idx).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len() as u32, pushed);
    });
}

#[test]
fn concatenated_packets_are_homogeneous() {
    for_cases(0x04, 128, |rng| {
        let n_pushes = rng.range_u32(1, 200) as usize;
        let cfg = ConcatConfig {
            headers: HeaderSpec::paper(),
            mtu: 1_500,
            delay: SimTime::from_ns(100),
            enabled: true,
        };
        let mut c = Concatenator::new(cfg);
        let check = |p: netsparse_snic::ConcatPacket| {
            // All PRs in one packet share destination and kind by
            // construction; wire bytes must match the formula.
            let expect = HeaderSpec::paper().packet_bytes(p.prs.len() as u32, p.payload_per_pr);
            assert_eq!(p.wire_bytes, expect);
        };
        for i in 0..n_pushes {
            let dest = rng.range_u32(0, 4);
            let kind = if rng.next_bool() {
                PrKind::Read
            } else {
                PrKind::Response
            };
            let payload = if kind == PrKind::Read { 0 } else { 512 };
            let pr = Pr {
                src_node: 1,
                src_tid: 2,
                idx: i as u32,
                req_id: i as u32,
            };
            if let Some(p) = c.push(SimTime::ZERO, dest, kind, pr, payload) {
                check(p);
            }
        }
        for p in c.flush_all() {
            check(p);
        }
    });
}

#[test]
fn idx_filter_matches_reference_set() {
    for_cases(0x05, 128, |rng| {
        let n_ops = rng.range_u32(1, 500);
        let mut filter = IdxFilter::new(10_000);
        let mut reference = std::collections::BTreeSet::new();
        for _ in 0..n_ops {
            let insert = rng.next_bool();
            let idx = rng.range_u32(0, 10_000);
            if insert {
                assert_eq!(filter.insert(idx), reference.insert(idx));
            } else {
                assert_eq!(filter.contains(idx), reference.contains(&idx));
            }
        }
        assert_eq!(filter.len(), reference.len() as u64);
    });
}

#[test]
fn property_cache_hits_only_after_insert() {
    for_cases(0x06, 64, |rng| {
        let inserts: Vec<u32> = (0..rng.range_u32(1, 200))
            .map(|_| rng.range_u32(0, 50_000))
            .collect();
        let probes: Vec<u32> = (0..rng.range_u32(1, 200))
            .map(|_| rng.range_u32(0, 50_000))
            .collect();
        let cfg = PropertyCacheConfig {
            capacity_bytes: 1 << 20,
            ..PropertyCacheConfig::paper()
        };
        let mut cache = PropertyCache::new(cfg, 64);
        let inserted: std::collections::BTreeSet<u32> = inserts.iter().copied().collect();
        for &i in &inserts {
            cache.insert(i);
        }
        for &p in &probes {
            if cache.lookup(p) {
                // A hit must be a previously inserted idx (never invented).
                assert!(inserted.contains(&p));
            }
        }
    });
}

#[test]
fn lru_cache_never_exceeds_capacity() {
    for_cases(0x07, 64, |rng| {
        let inserts: Vec<u32> = (0..rng.range_u32(1, 2_000))
            .map(|_| rng.range_u32(0, 100_000))
            .collect();
        let cfg = PropertyCacheConfig {
            capacity_bytes: 16 * 512, // one set of 16 ways at 512 B lines
            ..PropertyCacheConfig::paper()
        };
        let mut cache = PropertyCache::new(cfg, 512);
        for &i in &inserts {
            cache.insert(i);
        }
        let stats = cache.stats();
        assert!(stats.insertions <= inserts.len() as u64);
        // Residents = insertions - evictions <= entries.
        assert!(stats.insertions - stats.evictions <= cache.entries() as u64);
    });
}

#[test]
fn partition_owner_is_a_total_function() {
    for_cases(0x08, 256, |rng| {
        let n = rng.range_u32(1, 100_000);
        let parts = rng.range_u32(1, 256);
        let p = Partition1D::even(n, parts);
        let mut counted = 0u32;
        for part in 0..p.parts() {
            counted += p.part_len(part);
        }
        assert_eq!(counted, n);
        // Spot-check ownership at every boundary.
        for part in 0..p.parts() {
            let r = p.range(part);
            if r.start < r.end {
                assert_eq!(p.owner(r.start), part);
                assert_eq!(p.owner(r.end - 1), part);
            }
        }
    });
}

#[test]
fn routing_reaches_every_destination() {
    for_cases(0x09, 24, |rng| {
        let racks = rng.range_u32(2, 6);
        let rack_size = rng.range_u32(2, 6);
        let spines = rng.range_u32(1, 5);
        let topo = Topology::LeafSpine {
            racks,
            rack_size,
            spines,
        };
        let net = Network::new(topo);
        for src in 0..net.nodes() {
            for dst in 0..net.nodes() {
                if src == dst {
                    continue;
                }
                let path = net.path(src, dst);
                assert!(!path.hops.is_empty());
                assert_eq!(
                    path.hops.last().unwrap().to,
                    netsparse_netsim::Element::Nic(dst)
                );
                // Intra-rack stays under one switch; inter-rack uses three.
                let sw = path.switches().count();
                if topo.edge_switch_of(src) == topo.edge_switch_of(dst) {
                    assert_eq!(sw, 1);
                } else {
                    assert_eq!(sw, 3);
                }
            }
        }
    });
}

use netsparse_sparse::suite::{SuiteConfig, SuiteMatrix};

#[test]
fn suite_generator_invariants() {
    for_cases(0x0A, 16, |rng| {
        let matrix_id = rng.range_u32(0, 5) as usize;
        let nodes = rng.range_u32(2, 40);
        let rack_size = rng.range_u32(1, 8);
        let seed = rng.next_u64();
        let cfg = SuiteConfig {
            matrix: SuiteMatrix::ALL[matrix_id],
            nodes,
            rack_size,
            scale: 0.01,
            seed,
        };
        let wl = cfg.generate();
        assert_eq!(wl.nodes(), nodes);
        // Column space covered exactly by the partition.
        let total: u32 = (0..nodes).map(|p| wl.partition().part_len(p)).sum();
        assert_eq!(total, wl.n_cols());
        // Every stream index is in range (checked again by the
        // constructor, but the property documents it).
        for p in 0..nodes {
            for &idx in wl.stream(p) {
                assert!(idx < wl.n_cols());
            }
        }
        // Statistics are internally consistent.
        let stats = wl.pattern_stats();
        assert!(stats.total_unique_remote() <= stats.total_remote_refs());
        assert!(stats.total_remote_refs() <= stats.total_nnz());
        // Determinism.
        let again = cfg.generate();
        assert_eq!(wl.stream(0), again.stream(0));
    });
}

#[test]
fn virtual_concatenator_exactly_once() {
    use netsparse_snic::vconcat::{VirtualConcatenator, VirtualCqConfig};
    for_cases(0x0B, 64, |rng| {
        let n_pushes = rng.range_u32(1, 250) as usize;
        let physical_queues = rng.range_u32(1, 12) as usize;
        let physical_bytes = rng.range_u32(32, 512);
        let cfg = ConcatConfig {
            headers: HeaderSpec::paper(),
            mtu: 1_500,
            delay: SimTime::from_ns(100),
            enabled: true,
        };
        let mut c = VirtualConcatenator::new(
            cfg,
            VirtualCqConfig {
                physical_queues,
                physical_bytes,
            },
        );
        let mut emitted = 0usize;
        for i in 0..n_pushes {
            let dest = rng.range_u32(0, 6);
            let kind = if rng.next_bool() {
                PrKind::Read
            } else {
                PrKind::Response
            };
            let payload = if kind == PrKind::Read { 0 } else { 64 };
            let pr = Pr {
                src_node: 0,
                src_tid: 0,
                idx: i as u32,
                req_id: i as u32,
            };
            for p in c.push(SimTime::from_ns(i as u64), dest, kind, pr, payload) {
                assert!(p.wire_bytes <= 1_500);
                emitted += p.prs.len();
            }
        }
        for p in c.flush_all() {
            emitted += p.prs.len();
        }
        assert_eq!(emitted, n_pushes);
        assert_eq!(c.free_physical(), physical_queues);
    });
}

#[test]
fn reservoir_quantiles_are_ordered() {
    for_cases(0x0C, 128, |rng| {
        let values: Vec<u64> = (0..rng.range_u32(1, 400))
            .map(|_| rng.range_u64(0, 1_000_000))
            .collect();
        let capacity = rng.range_u32(1, 64) as usize;
        let mut r = netsparse_desim::Reservoir::new(capacity, 3);
        for &v in &values {
            r.record(v);
        }
        let q25 = r.quantile(0.25).unwrap();
        let q50 = r.quantile(0.5).unwrap();
        let q99 = r.quantile(0.99).unwrap();
        assert!(q25 <= q50 && q50 <= q99);
        let lo = *values.iter().min().unwrap();
        let hi = *values.iter().max().unwrap();
        assert!(q50 >= lo && q50 <= hi);
    });
}

#[test]
fn filter_never_passes_a_duplicate_idx_within_a_window() {
    // Within one filter window (no clears), a given idx results in at
    // most one issued PR, no matter how requests and responses interleave:
    // outstanding duplicates coalesce, completed duplicates filter.
    use netsparse_snic::{IdxOutcome, RigClient};
    for_cases(0x20, 128, |rng| {
        let n_cols = 256u32;
        let mut unit = RigClient::new(0, 0, 48);
        let mut filter = IdxFilter::new(n_cols);
        let mut issued = vec![false; n_cols as usize];
        let mut outstanding: Vec<u32> = Vec::new();
        for _ in 0..rng.range_u32(50, 400) {
            let idx = rng.range_u32(0, n_cols);
            match unit.process_idx(idx, false, true, true, &mut filter) {
                IdxOutcome::Issued(pr) => {
                    assert_eq!(pr.idx, idx);
                    assert!(
                        !issued[idx as usize],
                        "idx {idx} issued twice within one filter window"
                    );
                    issued[idx as usize] = true;
                    outstanding.push(idx);
                }
                IdxOutcome::Stalled => {
                    let done = outstanding.swap_remove(0);
                    unit.complete(done, &mut filter);
                }
                IdxOutcome::Coalesced | IdxOutcome::Filtered => {}
                IdxOutcome::Local => unreachable!("no idx is marked local"),
            }
            // Complete a random outstanding PR about half the time, so the
            // stream sees idxs in all three states.
            if !outstanding.is_empty() && rng.next_bool() {
                let i = rng.range_u32(0, outstanding.len() as u32) as usize;
                let done = outstanding.swap_remove(i);
                unit.complete(done, &mut filter);
            }
        }
    });
}

#[test]
fn coalescing_preserves_the_exact_requested_index_set() {
    // Redundancy elimination drops *transfers*, never *data*: the set of
    // idxs issued to the network equals the set of distinct remote idxs
    // requested — nothing lost, nothing extra.
    use netsparse_snic::{IdxOutcome, RigClient};
    for_cases(0x21, 128, |rng| {
        let n_cols = 256u32;
        let mut unit = RigClient::new(1, 0, 16);
        let mut filter = IdxFilter::new(n_cols);
        let mut requested = vec![false; n_cols as usize];
        let mut issued = vec![false; n_cols as usize];
        let mut outstanding: Vec<u32> = Vec::new();
        let idxs: Vec<u32> = (0..rng.range_u32(20, 300))
            .map(|_| rng.range_u32(0, n_cols))
            .collect();
        for &idx in &idxs {
            loop {
                match unit.process_idx(idx, false, true, true, &mut filter) {
                    IdxOutcome::Stalled => {
                        // Drain one response and retry the same idx, as
                        // the event loop does on wake-up.
                        let done = outstanding.swap_remove(0);
                        unit.complete(done, &mut filter);
                    }
                    IdxOutcome::Issued(pr) => {
                        assert!(!issued[pr.idx as usize], "duplicate PR for {idx}");
                        issued[pr.idx as usize] = true;
                        outstanding.push(pr.idx);
                        requested[idx as usize] = true;
                        break;
                    }
                    IdxOutcome::Coalesced | IdxOutcome::Filtered => {
                        requested[idx as usize] = true;
                        break;
                    }
                    IdxOutcome::Local => unreachable!("no idx is marked local"),
                }
            }
        }
        assert_eq!(
            requested, issued,
            "issued set differs from the requested set"
        );
    });
}

#[test]
fn concat_flush_sizes_never_exceed_the_mtu() {
    // Every packet either fits the MTU or is a single PR that alone
    // exceeds it (jumbo payloads have no smaller representation). Holds
    // for the dedicated and the virtualized concatenator alike, on every
    // flush path: MTU-full, timer expiry, pressure eviction and drain.
    use netsparse_snic::vconcat::{VirtualConcatenator, VirtualCqConfig};
    for_cases(0x22, 96, |rng| {
        let mtu = rng.range_u32(200, 9_000);
        let h = HeaderSpec::paper();
        let cfg = ConcatConfig {
            headers: h,
            mtu,
            delay: SimTime::from_ns(rng.range_u64(1, 800)),
            enabled: true,
        };
        let payload_of = |kind: PrKind| if kind == PrKind::Read { 0 } else { 64 };
        let bound = |kind: PrKind| (mtu as u64).max(h.packet_bytes(1, payload_of(kind)));
        let mut c = Concatenator::new(cfg);
        let mut v = VirtualConcatenator::new(
            cfg,
            VirtualCqConfig {
                physical_queues: 8,
                physical_bytes: rng.range_u32(64, 1_024).min(mtu),
            },
        );
        for i in 0..rng.range_u32(1, 300) {
            let dest = rng.range_u32(0, 6);
            let kind = if rng.next_bool() {
                PrKind::Read
            } else {
                PrKind::Response
            };
            let t = SimTime::from_ns(rng.range_u64(0, 3_000));
            let pr = Pr {
                src_node: 0,
                src_tid: 0,
                idx: i,
                req_id: i,
            };
            if let Some(p) = c.push(t, dest, kind, pr, payload_of(kind)) {
                assert!(p.wire_bytes <= bound(p.kind), "dedicated push overflow");
            }
            c.flush_expired_with(t, |p| {
                assert!(p.wire_bytes <= bound(p.kind), "dedicated expiry overflow");
            });
            for p in v.push(t, dest, kind, pr, payload_of(kind)) {
                assert!(p.wire_bytes <= bound(p.kind), "virtual push overflow");
            }
            v.flush_expired_with(t, |p| {
                assert!(p.wire_bytes <= bound(p.kind), "virtual expiry overflow");
            });
        }
        for p in c.flush_all() {
            assert!(p.wire_bytes <= bound(p.kind), "dedicated drain overflow");
        }
        for p in v.flush_all() {
            assert!(p.wire_bytes <= bound(p.kind), "virtual drain overflow");
        }
    });
}
