//! Property-based tests (proptest) over the substrate components:
//! protocol accounting, concatenation, filtering, caching, partitioning
//! and routing must hold their invariants for arbitrary inputs.

use proptest::prelude::*;

use netsparse_desim::SimTime;
use netsparse_netsim::{Network, Topology};
use netsparse_snic::{ConcatConfig, Concatenator, HeaderSpec, IdxFilter, Pr, PrKind};
use netsparse_sparse::Partition1D;
use netsparse_switch::{PropertyCache, PropertyCacheConfig};

proptest! {
    #[test]
    fn packet_bytes_are_consistent(n_prs in 1u32..200, payload in 0u32..2_048) {
        let h = HeaderSpec::paper();
        let merged = h.packet_bytes(n_prs, payload);
        let separate: u64 = (0..n_prs).map(|_| h.packet_bytes(1, payload)).sum();
        // Concatenation can only save header bytes, exactly (n-1) shared
        // per-packet headers' worth.
        prop_assert_eq!(separate - merged, (n_prs as u64 - 1) * h.per_packet() as u64);
        // A packet always carries its payloads.
        prop_assert!(merged >= n_prs as u64 * payload as u64);
    }

    #[test]
    fn prs_per_mtu_fits(mtu in 100u32..9_000, payload in 0u32..1_024) {
        let h = HeaderSpec::paper();
        let n = h.prs_per_mtu(mtu, payload);
        prop_assert!(n >= 1);
        if n > 1 {
            // n PRs fit; n+1 would not.
            prop_assert!(h.packet_bytes(n, payload) <= mtu as u64);
            prop_assert!(h.packet_bytes(n + 1, payload) > mtu as u64);
        }
    }

    #[test]
    fn concatenator_never_loses_or_duplicates_prs(
        pushes in prop::collection::vec((0u32..8, 0u32..2, 0u64..2_000), 1..300),
        delay_ns in 1u64..2_000,
    ) {
        let cfg = ConcatConfig {
            headers: HeaderSpec::paper(),
            mtu: 1_500,
            delay: SimTime::from_ns(delay_ns),
            enabled: true,
        };
        let mut c = Concatenator::new(cfg);
        let mut emitted: Vec<Pr> = Vec::new();
        let mut pushed = 0u32;
        for (i, (dest, kind, t)) in pushes.iter().enumerate() {
            let kind = if *kind == 0 { PrKind::Read } else { PrKind::Response };
            let payload = if kind == PrKind::Read { 0 } else { 64 };
            let pr = Pr { src_node: 99, src_tid: 0, idx: i as u32, req_id: i as u32 };
            pushed += 1;
            if let Some(p) = c.push(SimTime::from_ns(*t), *dest, kind, pr, payload) {
                prop_assert!(p.wire_bytes <= 1_500);
                emitted.extend(p.prs);
            }
            for p in c.flush_expired(SimTime::from_ns(*t)) {
                emitted.extend(p.prs);
            }
        }
        for p in c.flush_all() {
            emitted.extend(p.prs);
        }
        // Exactly-once delivery: every pushed PR emitted exactly once.
        prop_assert_eq!(emitted.len() as u32, pushed);
        let mut ids: Vec<u32> = emitted.iter().map(|p| p.idx).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len() as u32, pushed);
    }

    #[test]
    fn concatenated_packets_are_homogeneous(
        pushes in prop::collection::vec((0u32..4, 0u32..2), 1..200),
    ) {
        let cfg = ConcatConfig {
            headers: HeaderSpec::paper(),
            mtu: 1_500,
            delay: SimTime::from_ns(100),
            enabled: true,
        };
        let mut c = Concatenator::new(cfg);
        let mut check = |p: netsparse_snic::ConcatPacket| {
            // All PRs in one packet share destination and kind by
            // construction; wire bytes must match the formula.
            let expect = HeaderSpec::paper()
                .packet_bytes(p.prs.len() as u32, p.payload_per_pr);
            assert_eq!(p.wire_bytes, expect);
        };
        for (i, (dest, kind)) in pushes.iter().enumerate() {
            let kind = if *kind == 0 { PrKind::Read } else { PrKind::Response };
            let payload = if kind == PrKind::Read { 0 } else { 512 };
            let pr = Pr { src_node: 1, src_tid: 2, idx: i as u32, req_id: i as u32 };
            if let Some(p) = c.push(SimTime::ZERO, *dest, kind, pr, payload) {
                check(p);
            }
        }
        for p in c.flush_all() {
            check(p);
        }
    }

    #[test]
    fn idx_filter_matches_reference_set(
        ops in prop::collection::vec((any::<bool>(), 0u32..10_000), 1..500),
    ) {
        let mut filter = IdxFilter::new(10_000);
        let mut reference = std::collections::HashSet::new();
        for (insert, idx) in ops {
            if insert {
                prop_assert_eq!(filter.insert(idx), reference.insert(idx));
            } else {
                prop_assert_eq!(filter.contains(idx), reference.contains(&idx));
            }
        }
        prop_assert_eq!(filter.len(), reference.len() as u64);
    }

    #[test]
    fn property_cache_hits_only_after_insert(
        inserts in prop::collection::vec(0u32..50_000, 1..200),
        probes in prop::collection::vec(0u32..50_000, 1..200),
    ) {
        let cfg = PropertyCacheConfig {
            capacity_bytes: 1 << 20,
            ..PropertyCacheConfig::paper()
        };
        let mut cache = PropertyCache::new(cfg, 64);
        let inserted: std::collections::HashSet<u32> = inserts.iter().copied().collect();
        for &i in &inserts {
            cache.insert(i);
        }
        for &p in &probes {
            if cache.lookup(p) {
                // A hit must be a previously inserted idx (never invented).
                prop_assert!(inserted.contains(&p));
            }
        }
    }

    #[test]
    fn lru_cache_never_exceeds_capacity(
        inserts in prop::collection::vec(0u32..100_000, 1..2_000),
    ) {
        let cfg = PropertyCacheConfig {
            capacity_bytes: 16 * 512, // one set of 16 ways at 512 B lines
            ..PropertyCacheConfig::paper()
        };
        let mut cache = PropertyCache::new(cfg, 512);
        for &i in &inserts {
            cache.insert(i);
        }
        let stats = cache.stats();
        prop_assert!(stats.insertions <= inserts.len() as u64);
        // Residents = insertions - evictions <= entries.
        prop_assert!(stats.insertions - stats.evictions <= cache.entries() as u64);
    }

    #[test]
    fn partition_owner_is_a_total_function(n in 1u32..100_000, parts in 1u32..256) {
        let p = Partition1D::even(n, parts);
        let mut counted = 0u32;
        for part in 0..p.parts() {
            counted += p.part_len(part);
        }
        prop_assert_eq!(counted, n);
        // Spot-check ownership at every boundary.
        for part in 0..p.parts() {
            let r = p.range(part);
            if r.start < r.end {
                prop_assert_eq!(p.owner(r.start), part);
                prop_assert_eq!(p.owner(r.end - 1), part);
            }
        }
    }

    #[test]
    fn routing_reaches_every_destination(
        racks in 2u32..6, rack_size in 2u32..6, spines in 1u32..5,
    ) {
        let topo = Topology::LeafSpine { racks, rack_size, spines };
        let net = Network::new(topo);
        for src in 0..net.nodes() {
            for dst in 0..net.nodes() {
                if src == dst { continue; }
                let path = net.path(src, dst);
                prop_assert!(!path.hops.is_empty());
                prop_assert_eq!(
                    path.hops.last().unwrap().to,
                    netsparse_netsim::Element::Nic(dst)
                );
                // Intra-rack stays under one switch; inter-rack uses three.
                let sw = path.switches().count();
                if topo.edge_switch_of(src) == topo.edge_switch_of(dst) {
                    prop_assert_eq!(sw, 1);
                } else {
                    prop_assert_eq!(sw, 3);
                }
            }
        }
    }
}

use netsparse_sparse::suite::{SuiteConfig, SuiteMatrix};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn suite_generator_invariants(
        matrix_id in 0usize..5,
        nodes in 2u32..40,
        rack_size in 1u32..8,
        seed in any::<u64>(),
    ) {
        let cfg = SuiteConfig {
            matrix: SuiteMatrix::ALL[matrix_id],
            nodes,
            rack_size,
            scale: 0.01,
            seed,
        };
        let wl = cfg.generate();
        prop_assert_eq!(wl.nodes(), nodes);
        // Column space covered exactly by the partition.
        let total: u32 = (0..nodes).map(|p| wl.partition().part_len(p)).sum();
        prop_assert_eq!(total, wl.n_cols());
        // Every stream index is in range (checked again by the
        // constructor, but the property documents it).
        for p in 0..nodes {
            for &idx in wl.stream(p) {
                prop_assert!(idx < wl.n_cols());
            }
        }
        // Statistics are internally consistent.
        let stats = wl.pattern_stats();
        prop_assert!(stats.total_unique_remote() <= stats.total_remote_refs());
        prop_assert!(stats.total_remote_refs() <= stats.total_nnz());
        // Determinism.
        let again = cfg.generate();
        prop_assert_eq!(wl.stream(0), again.stream(0));
    }

    #[test]
    fn virtual_concatenator_exactly_once(
        pushes in prop::collection::vec((0u32..6, 0u32..2), 1..250),
        physical_queues in 1usize..12,
        physical_bytes in 32u32..512,
    ) {
        use netsparse_snic::vconcat::{VirtualConcatenator, VirtualCqConfig};
        let cfg = ConcatConfig {
            headers: HeaderSpec::paper(),
            mtu: 1_500,
            delay: SimTime::from_ns(100),
            enabled: true,
        };
        let mut c = VirtualConcatenator::new(cfg, VirtualCqConfig {
            physical_queues,
            physical_bytes,
        });
        let mut emitted = 0usize;
        for (i, (dest, kind)) in pushes.iter().enumerate() {
            let kind = if *kind == 0 { PrKind::Read } else { PrKind::Response };
            let payload = if kind == PrKind::Read { 0 } else { 64 };
            let pr = Pr { src_node: 0, src_tid: 0, idx: i as u32, req_id: i as u32 };
            for p in c.push(SimTime::from_ns(i as u64), *dest, kind, pr, payload) {
                prop_assert!(p.wire_bytes <= 1_500);
                emitted += p.prs.len();
            }
        }
        for p in c.flush_all() {
            emitted += p.prs.len();
        }
        prop_assert_eq!(emitted, pushes.len());
        prop_assert_eq!(c.free_physical(), physical_queues);
    }

    #[test]
    fn reservoir_quantiles_are_ordered(
        values in prop::collection::vec(0u64..1_000_000, 1..400),
        capacity in 1usize..64,
    ) {
        let mut r = netsparse_desim::Reservoir::new(capacity, 3);
        for &v in &values {
            r.record(v);
        }
        let q25 = r.quantile(0.25).unwrap();
        let q50 = r.quantile(0.5).unwrap();
        let q99 = r.quantile(0.99).unwrap();
        prop_assert!(q25 <= q50 && q50 <= q99);
        let lo = *values.iter().min().unwrap();
        let hi = *values.iter().max().unwrap();
        prop_assert!(q50 >= lo && q50 <= hi);
    }
}
