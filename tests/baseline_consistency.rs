//! Consistency of the analytic baselines with each other and with the
//! simulated system: orderings the paper reports must emerge here too.

use netsparse::baselines::{gmean, Baselines};
use netsparse::experiments::Experiment;
use netsparse::prelude::*;

fn exp(m: SuiteMatrix) -> Experiment {
    Experiment::with_cluster(m, 32, 8, 0.08, 33)
}

fn cfg(k: u32) -> ClusterConfig {
    ClusterConfig::mini(
        Topology::LeafSpine {
            racks: 4,
            rack_size: 8,
            spines: 4,
        },
        k,
    )
}

#[test]
fn netsparse_beats_both_baselines_on_the_gmean() {
    let mut over_su = Vec::new();
    let mut over_sa = Vec::new();
    for m in SuiteMatrix::ALL {
        let e = exp(m);
        let (cmp, _) = e.compare(&cfg(16));
        over_su.push(cmp.netsparse_over_su());
        over_sa.push(cmp.netsparse_over_sa());
    }
    assert!(gmean(&over_su) > 3.0, "vs SUOpt: {over_su:?}");
    assert!(gmean(&over_sa) > 3.0, "vs SAOpt: {over_sa:?}");
}

#[test]
fn speedups_grow_with_property_size() {
    // Paper: SUOpt is favored by small properties, so NetSparse's and
    // SAOpt's speedups over SUOpt increase with K.
    let e = exp(SuiteMatrix::Arabic);
    let mut ns = Vec::new();
    for k in [1u32, 16, 128] {
        let (cmp, _) = e.compare(&cfg(k));
        ns.push(cmp.netsparse_over_su());
    }
    assert!(ns[0] < ns[1] && ns[1] < ns[2], "{ns:?}");
}

#[test]
fn saopt_loses_to_suopt_on_stokes() {
    // Paper Figure 12: SAOpt performs worse than SUOpt for stokes (its
    // SU redundancy is lowest, so the dense schedule is nearly free).
    let e = exp(SuiteMatrix::Stokes);
    let (cmp, _) = e.compare(&cfg(1));
    assert!(
        cmp.sa_over_su() < 1.0,
        "stokes K=1 SAOpt/SUOpt = {}",
        cmp.sa_over_su()
    );
}

#[test]
fn su_baseline_time_matches_closed_form() {
    let e = exp(SuiteMatrix::Queen);
    let b = Baselines::for_line_rate(100.0);
    let stats = e.wl.pattern_stats();
    let max_recv = stats.per_node.iter().map(|n| n.su_received).max().unwrap();
    let expect = max_recv as f64 * 64.0 * 8.0 / 100e9;
    let got = b.su.kernel_comm_time(&e.wl, 16);
    assert!((got - expect).abs() < 1e-12);
}

#[test]
fn saopt_pr_counts_bound_by_refs_and_unique() {
    let e = exp(SuiteMatrix::Uk);
    let b = Baselines::for_line_rate(100.0);
    let stats = e.wl.pattern_stats();
    for p in 0..e.wl.nodes() {
        let prs = b.sa.node_pr_count(&e.wl, p);
        let node = &stats.per_node[p as usize];
        assert!(prs >= node.unique_remote, "node {p}");
        assert!(prs <= node.remote_refs, "node {p}");
    }
}

#[test]
fn comparison_struct_is_self_consistent() {
    let e = exp(SuiteMatrix::Europe);
    let (cmp, report) = e.compare(&cfg(16));
    assert_eq!(cmp.k, 16);
    assert!((cmp.netsparse_time - report.comm_time_s()).abs() < 1e-15);
    let derived = cmp.netsparse_over_su() / cmp.netsparse_over_sa();
    assert!((derived - cmp.sa_over_su()).abs() / cmp.sa_over_su() < 1e-9);
}

#[test]
fn end_to_end_ideal_dominates_everything() {
    for m in [SuiteMatrix::Arabic, SuiteMatrix::Europe] {
        let e = exp(m);
        let r = e.end_to_end(&cfg(16), ComputeEngine::Spade);
        assert!(r.speedup_ideal >= r.speedup_netsparse);
        assert!(r.speedup_ideal >= r.speedup_sa);
        assert!(r.speedup_ideal >= r.speedup_su);
        assert!(r.speedup_netsparse >= r.speedup_su, "{m}: hw comm must win");
    }
}

#[test]
fn compute_engines_order_end_to_end_sensibly() {
    // Faster compute exposes communication more: the NetSparse advantage
    // over SAOpt grows from DDR to HBM (paper §9.6).
    let e = exp(SuiteMatrix::Arabic);
    let c = cfg(128);
    let report = e.run(&c);
    let ddr = e.end_to_end_from(&c, ComputeEngine::CpuDdr, &report);
    let hbm = e.end_to_end_from(&c, ComputeEngine::CpuHbm, &report);
    let adv_ddr = ddr.speedup_netsparse / ddr.speedup_sa;
    let adv_hbm = hbm.speedup_netsparse / hbm.speedup_sa;
    assert!(
        adv_hbm >= adv_ddr * 0.95,
        "DDR adv {adv_ddr}, HBM adv {adv_hbm}"
    );
}

#[test]
fn vanilla_sa_is_orders_of_magnitude_below_line_rate() {
    let model = netsparse_accel::VanillaSaModel::paper();
    for dests in [1.0, 2.5, 7.4] {
        assert!(model.line_utilization(32, dests) < 0.01);
    }
}
