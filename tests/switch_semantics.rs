//! Surgical scenarios pinning the switch datapath semantics: in-switch
//! cache hits serving rack-mates, read-to-response conversion, and
//! concatenation grouping — with hand-built workloads whose expected
//! behaviour can be reasoned out exactly.

use netsparse::prelude::*;
use netsparse_sparse::Partition1D;

/// 2 racks x 4 nodes; 8 columns per node.
fn topo() -> Topology {
    Topology::LeafSpine {
        racks: 2,
        rack_size: 4,
        spines: 2,
    }
}

fn cfg(k: u32) -> ClusterConfig {
    ClusterConfig::mini(topo(), k)
}

fn wl(streams: Vec<Vec<u32>>) -> CommWorkload {
    let part = Partition1D::even(64, 8);
    CommWorkload::from_streams(part, vec![8; 8], streams)
}

#[test]
fn rack_mates_hit_the_property_cache() {
    // Node 0 requests idx 40 (owned by node 5, other rack) immediately;
    // nodes 1-3 request the same idx after long local prefixes, giving
    // node 0's response time to populate the ToR cache. A single client
    // RIG unit serializes each node's scan so the prefix actually delays
    // the request.
    let local_prefix: Vec<u32> = (0..12_000).map(|i| i % 8).collect();
    let mut late = local_prefix.clone();
    late.push(40);
    let streams = vec![
        vec![40],
        late.clone(),
        late.clone(),
        late,
        vec![],
        vec![],
        vec![],
        vec![],
    ];
    let mut serial = cfg(16);
    serial.snic.rig_units = 2; // one client + one server
    let report = simulate(&serial, &wl(streams.clone()));
    assert!(report.functional_check_passed);
    // The three late requesters must all hit.
    assert_eq!(report.cache_hits, 3, "hits: {}", report.cache_hits);
    // Cache hits short-circuit at the ToR: the home node serves fewer
    // reads, so its uplink carries fewer response bytes.
    let mut no_cache = serial.clone();
    no_cache.mechanisms.property_cache = false;
    let cold = simulate(&no_cache, &wl(streams));
    assert!(
        report.nodes[5].tx_wire_bytes < cold.nodes[5].tx_wire_bytes,
        "home uplink: cached {} vs cold {}",
        report.nodes[5].tx_wire_bytes,
        cold.nodes[5].tx_wire_bytes
    );
}

#[test]
fn intra_rack_properties_are_never_cached() {
    // Node 0 and node 1 both need idx 16 (owned by node 2 — same rack).
    let streams = vec![
        vec![16],
        vec![0, 1, 2, 16],
        vec![],
        vec![],
        vec![],
        vec![],
        vec![],
        vec![],
    ];
    let report = simulate(&cfg(16), &wl(streams));
    assert!(report.functional_check_passed);
    assert_eq!(report.cache_hits, 0);
    assert_eq!(report.cache_lookups, 0, "intra-rack PRs skip the cache");
}

#[test]
fn burst_to_one_destination_concatenates_into_one_packet() {
    // Node 0 requests 10 distinct idxs of node 5 back to back: the NIC
    // concatenator should pack them into a single read packet.
    let streams = vec![
        (40..50).collect::<Vec<u32>>(),
        vec![],
        vec![],
        vec![],
        vec![],
        vec![],
        vec![],
        vec![],
    ];
    let report = simulate(&cfg(16), &wl(streams));
    assert!(report.functional_check_passed);
    assert!(
        report.prs_per_packet.max() >= Some(10),
        "max PRs/packet {:?}",
        report.prs_per_packet.max()
    );
}

#[test]
fn concat_delay_bounds_a_lone_pr() {
    // A single remote PR has nobody to concatenate with: it waits out the
    // full NIC delay budget, so shrinking the budget shrinks the kernel.
    let streams = vec![
        vec![40],
        vec![],
        vec![],
        vec![],
        vec![],
        vec![],
        vec![],
        vec![],
    ];
    let slow = simulate(&cfg(16), &wl(streams.clone()));
    let mut fast_cfg = cfg(16);
    fast_cfg.snic.concat_delay_cycles = 0;
    fast_cfg.switch.concat_delay_cycles = 0;
    let fast = simulate(&fast_cfg, &wl(streams));
    let delta = slow.comm_time.saturating_sub(fast.comm_time);
    // The lone PR crosses two NIC concatenators (read at the requester,
    // response at the home) and two switch stages each way.
    let one_budget = cfg(16).nic_concat_delay();
    assert!(
        delta >= one_budget,
        "delay budget not observable: delta {delta}, budget {one_budget}"
    );
}

#[test]
fn reduction_merges_shared_rows_at_the_source_tor() {
    // Nodes 0-3 (rack 0) all need idx 40, owned by node 5 (rack 1). Each
    // node issues its own read, so four partial-sum contributions for the
    // same (root, row) leave rack 0 — the ToR's reduce table must fold
    // them into one merged PR: 1 allocation, 3 merges.
    let streams = vec![
        vec![40],
        vec![40],
        vec![40],
        vec![40],
        vec![],
        vec![],
        vec![],
        vec![],
    ];
    let mut c = cfg(16);
    c.reduce = ReduceConfig::in_network();
    let report = simulate(&c, &wl(streams));
    assert!(report.functional_check_passed);
    let r = report.reduce.as_ref().expect("reduce enabled");
    assert_eq!(r.contribs_issued, 4, "one contribution per issued read");
    assert_eq!(r.merges, 3, "three folds into the first entry");
    assert_eq!(r.bypassed, 0);
    assert!(r.conserved(), "conservation: {r:?}");
    assert_eq!(r.contribs_dropped, 0, "lossless run drops nothing");
    assert_eq!(r.contribs_delivered, 4);
}

#[test]
fn reduction_off_reports_are_bit_identical() {
    // `ReduceConfig::disabled()` is the default: spelling it out must not
    // perturb a single field of the report (the extension is pay-for-use).
    let streams = vec![
        (40..50).collect::<Vec<u32>>(),
        vec![16, 40, 41],
        vec![],
        vec![],
        vec![],
        vec![],
        vec![],
        vec![],
    ];
    let base = simulate(&cfg(16), &wl(streams.clone()));
    let mut explicit = cfg(16);
    explicit.reduce = ReduceConfig::disabled();
    let off = simulate(&explicit, &wl(streams));
    assert!(
        base.reduce.is_none(),
        "disabled runs carry no reduce report"
    );
    assert_eq!(format!("{base:?}"), format!("{off:?}"));
}

#[test]
fn in_network_reduction_shrinks_root_downlink_bytes() {
    // Same contribution stream, two transports: software baseline ships
    // every partial PR to the root; in-network reduction folds rack-mates'
    // contributions at the source ToR, so the root sees strictly fewer
    // Partial wire bytes while delivering the same contributions.
    let streams = vec![
        vec![40, 41],
        vec![40, 41],
        vec![40, 41],
        vec![40, 41],
        vec![],
        vec![],
        vec![],
        vec![],
    ];
    let mut sw = cfg(16);
    sw.reduce = ReduceConfig::software_baseline();
    let soft = simulate(&sw, &wl(streams.clone()));
    let mut inn = cfg(16);
    inn.reduce = ReduceConfig::in_network();
    let net = simulate(&inn, &wl(streams));
    let soft_r = soft.reduce.as_ref().expect("baseline reduce report");
    let net_r = net.reduce.as_ref().expect("in-network reduce report");
    assert_eq!(soft_r.merges, 0, "software baseline never folds in-network");
    assert!(net_r.merges > 0);
    assert!(soft_r.conserved() && net_r.conserved());
    assert_eq!(
        soft_r.contribs_delivered, net_r.contribs_delivered,
        "merging must not lose contributions"
    );
    assert_eq!(
        soft_r.value_delivered, net_r.value_delivered,
        "merged value sums must match the unmerged transport"
    );
    assert!(
        net_r.root_wire_bytes < soft_r.root_wire_bytes,
        "root bytes: in-network {} vs software {}",
        net_r.root_wire_bytes,
        soft_r.root_wire_bytes
    );
    assert!(net_r.partial_prs_at_root < soft_r.partial_prs_at_root);
}

#[test]
fn cross_node_concatenation_happens_at_the_switch() {
    // Nodes 0-3 each send one read to node 5 at the same instant. NIC
    // concatenators cannot merge them (different sources), but the ToR
    // can: some packet on the wire carries more than one PR.
    let streams = vec![
        vec![40],
        vec![41],
        vec![42],
        vec![43],
        vec![],
        vec![],
        vec![],
        vec![],
    ];
    let report = simulate(&cfg(16), &wl(streams.clone()));
    assert!(report.functional_check_passed);
    assert!(
        report.prs_per_packet.max() >= Some(2),
        "switch should merge same-destination PRs from different nodes"
    );
    // With switch concatenation off they stay separate...
    let mut no_switch = cfg(16);
    no_switch.mechanisms.switch_concat = false;
    no_switch.mechanisms.property_cache = false;
    let separate = simulate(&no_switch, &wl(streams));
    // ...and more wire bytes are spent on headers.
    assert!(separate.total_link_bytes >= report.total_link_bytes);
}
