//! Serial-vs-parallel sweep equivalence.
//!
//! The bench crate's `SweepRunner` promises that fanning a sweep's
//! independent points across threads changes wall-clock only: results
//! come back in submission order, and every simulation inside a point is
//! bit-identical to what a serial loop would have produced. This suite
//! pins that contract at two levels:
//!
//! - raw simulation points: same-seed sweeps at 1, 2, and 8 workers must
//!   yield identical `SimReport` sequences — including the engine's
//!   audit digests when auditing is compiled in;
//! - rendered tables: a representative figure must render byte-identical
//!   text at any worker count.

use netsparse::prelude::*;
use netsparse_bench::{tables, BenchOpts, SweepRunner};
use netsparse_desim::SimTime;
use netsparse_sparse::suite::SuiteConfig;
use netsparse_sparse::SuiteMatrix;

/// Everything observable about one simulated point, cheap to compare.
#[derive(Debug, PartialEq)]
struct PointResult {
    comm_time: SimTime,
    total_link_bytes: u64,
    events: u64,
    audit_digest: Option<u64>,
    functional_check_passed: bool,
    node_finishes: Vec<SimTime>,
}

/// One sweep point: workload seed and property size derived from the
/// submission index alone, exactly how the bench tables parameterize
/// their grids.
fn run_point(i: usize) -> PointResult {
    let wl = SuiteConfig {
        matrix: SuiteMatrix::Queen,
        nodes: 8,
        rack_size: 4,
        scale: 0.05,
        seed: 100 + i as u64,
    }
    .generate();
    let topo = Topology::LeafSpine {
        racks: 2,
        rack_size: 4,
        spines: 2,
    };
    let k = [1u32, 16, 128][i % 3];
    let report = netsparse::simulate(&ClusterConfig::mini(topo, k), &wl);
    PointResult {
        comm_time: report.comm_time,
        total_link_bytes: report.total_link_bytes,
        events: report.events,
        audit_digest: report.audit_digest,
        functional_check_passed: report.functional_check_passed,
        node_finishes: report.nodes.iter().map(|n| n.finish).collect(),
    }
}

#[test]
fn simreport_sequences_match_across_1_2_and_8_workers() {
    const POINTS: usize = 6;
    let serial = SweepRunner::new(1).run(POINTS, run_point);
    assert!(
        serial.iter().all(|r| r.functional_check_passed),
        "every point must deliver exactly-once"
    );
    // Auditing is active in debug builds and under --features audit; when
    // it is, the digests must travel with the reports unchanged.
    if cfg!(any(debug_assertions, feature = "audit")) {
        assert!(serial.iter().all(|r| r.audit_digest.is_some()));
    }
    for workers in [2usize, 8] {
        let parallel = SweepRunner::new(workers).run(POINTS, run_point);
        assert_eq!(
            parallel, serial,
            "{workers}-worker sweep diverged from serial"
        );
    }
}

/// A panicking point must fail the sweep *identifiably* — never hang the
/// worker pool, never abort the process, and never mis-attribute the
/// failure — at every worker count, even when other points are still
/// mid-flight when the panic lands.
#[test]
fn panicking_point_fails_the_sweep_without_hanging() {
    const POINTS: usize = 12;
    const BAD: usize = 7;
    let point = |i: usize| {
        let r = run_point(i % 3);
        assert!(i != BAD, "chaos point {BAD} exploded");
        r
    };
    for workers in [1usize, 2, 8] {
        let err = SweepRunner::new(workers)
            .try_run(POINTS, point)
            .expect_err("the exploding point must fail the sweep");
        assert_eq!(err.index, BAD, "failure attributed to the wrong point");
        assert!(
            err.message.contains("exploded"),
            "panic message lost: {}",
            err.message
        );
    }
    // The panicking `run` path re-raises with the original payload, so
    // sweep assertions read the same serial and parallel.
    let caught = std::panic::catch_unwind(|| SweepRunner::new(4).run(POINTS, point));
    let payload = caught.expect_err("run() must propagate the panic");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
        .unwrap_or_default();
    assert!(msg.contains("exploded"), "payload: {msg}");
}

#[test]
fn rendered_tables_are_byte_identical_across_worker_counts() {
    let serial = BenchOpts {
        scale: 0.02,
        seed: 7,
        paper_profile: false,
        workers: 1,
    };
    let reference = tables::fig12(&serial);
    for workers in [2usize, 8] {
        assert_eq!(
            tables::fig12(&serial.with_workers(workers)),
            reference,
            "fig12 diverged at {workers} workers"
        );
    }
}
