//! Integration tests crate; see the test files.

pub mod json;
