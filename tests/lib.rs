//! Integration tests crate; see the test files.
