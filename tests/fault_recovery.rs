//! §7 extensions under test: packet-loss recovery via the RIG watchdog
//! (§7.1) — including burst loss, link/switch failures, failover routing
//! and degraded-mode escalation — and virtualized Concatenation Queues
//! (§7.2).

use netsparse::config::{ConcatImpl, FaultConfig};
use netsparse::prelude::*;
use netsparse_desim::LossModel;
use netsparse_snic::vconcat::{dedicated_sram_bytes, VirtualCqConfig};

fn topo() -> Topology {
    Topology::LeafSpine {
        racks: 4,
        rack_size: 8,
        spines: 4,
    }
}

fn workload(seed: u64) -> CommWorkload {
    SuiteConfig {
        matrix: SuiteMatrix::Uk,
        nodes: 32,
        rack_size: 8,
        scale: 0.05,
        seed,
    }
    .generate()
}

fn lossy_cfg(loss: f64) -> ClusterConfig {
    let mut cfg = ClusterConfig::mini(topo(), 16);
    // Generous watchdog: far above a command's worst-case latency, so it
    // only fires for genuinely lost packets.
    cfg.faults = FaultConfig::builder()
        .bernoulli_loss(loss)
        .watchdog_ns(100_000)
        .seed(7)
        .build()
        .expect("test fault config is valid");
    cfg
}

#[test]
fn watchdog_without_loss_never_fires() {
    let wl = workload(1);
    let lossless = simulate(&lossy_cfg(0.0), &wl);
    assert!(lossless.functional_check_passed);
    assert_eq!(lossless.dropped_packets, 0);
    let retries: u64 = lossless.nodes.iter().map(|n| n.watchdog_retries).sum();
    assert_eq!(retries, 0, "spurious watchdog restarts");
    // And it matches a run without any fault config at all.
    let plain = simulate(&ClusterConfig::mini(topo(), 16), &wl);
    assert_eq!(plain.comm_time, lossless.comm_time);
}

#[test]
fn kernel_survives_one_percent_packet_loss() {
    let wl = workload(2);
    let report = simulate(&lossy_cfg(0.01), &wl);
    assert!(report.dropped_packets > 0, "loss must actually occur");
    assert!(
        report.functional_check_passed,
        "recovery must re-fetch every lost property"
    );
    let retries: u64 = report.nodes.iter().map(|n| n.watchdog_retries).sum();
    assert!(retries > 0, "drops must trigger watchdog restarts");
}

#[test]
fn kernel_survives_heavy_packet_loss() {
    let wl = workload(3);
    let report = simulate(&lossy_cfg(0.05), &wl);
    assert!(report.functional_check_passed);
}

#[test]
fn recovery_costs_time() {
    let wl = workload(4);
    let clean = simulate(&lossy_cfg(0.0), &wl);
    let lossy = simulate(&lossy_cfg(0.02), &wl);
    assert!(
        lossy.comm_time > clean.comm_time,
        "retries cannot be free: {} vs {}",
        lossy.comm_time,
        clean.comm_time
    );
}

#[test]
#[should_panic(expected = "watchdog")]
fn loss_without_watchdog_is_rejected() {
    let mut cfg = ClusterConfig::mini(topo(), 16);
    // Bypasses the validated builder; simulate() still re-validates.
    cfg.faults.loss = LossModel::Bernoulli { rate: 0.01 };
    simulate(&cfg, &workload(5));
}

#[test]
fn burst_loss_recovers_and_is_seed_deterministic() {
    let wl = workload(10);
    let mut cfg = ClusterConfig::mini(topo(), 16);
    cfg.faults = FaultConfig::builder()
        .burst_loss(0.02, 0.2, 0.001, 0.2)
        .watchdog_ns(100_000)
        .seed(7)
        .build()
        .expect("burst config is valid");
    let a = simulate(&cfg, &wl);
    let b = simulate(&cfg, &wl);
    assert!(a.functional_check_passed);
    let fr = a
        .faults
        .as_ref()
        .expect("faulted run populates FaultReport");
    assert!(fr.dropped_loss > 0, "burst loss must actually drop packets");
    assert!(
        fr.drop_bursts.count() > 0,
        "drops must be recorded as bursts"
    );
    // Same seed: identical trajectory, down to the event digest.
    assert_eq!(a.comm_time, b.comm_time);
    assert_eq!(a.events, b.events);
    assert_eq!(a.audit_digest, b.audit_digest);
    // Different fault seed: a different (but still recovered) trajectory.
    let mut other = cfg.clone();
    other.faults.seed = 8;
    let c = simulate(&other, &wl);
    assert!(c.functional_check_passed);
    assert_ne!(
        (a.comm_time, a.events),
        (c.comm_time, c.events),
        "fault randomness must key off the fault seed"
    );
}

#[test]
fn link_failure_triggers_failover_and_recovers() {
    let wl = workload(11);
    let mut cfg = ClusterConfig::mini(topo(), 16);
    // Cut rack 0's uplink to spine 4 (the primary spine for every fourth
    // destination) mid-run (the clean run drains in ~4 us); ECMP
    // next-choice reroutes via spines 5..8.
    cfg.faults = FaultConfig::builder()
        .fail_link_at(0, 4, 2_000)
        .watchdog_ns(100_000)
        .seed(7)
        .build()
        .expect("link-failure config is valid");
    let report = simulate(&cfg, &wl);
    assert!(
        report.functional_check_passed,
        "failover routing must keep every property deliverable"
    );
    let fr = report
        .faults
        .as_ref()
        .expect("faulted run populates FaultReport");
    assert_eq!(fr.fault_transitions, 1);
    assert!(fr.route_failovers > 0, "routes must actually move");
}

#[test]
fn remote_tor_death_escalates_to_degraded_delivery() {
    let wl = workload(12);
    let mut cfg = ClusterConfig::mini(topo(), 16);
    // Rack 1's ToR (and its property cache) dies at 1 us — mid-run, the
    // clean run drains in ~4 us — and stays dead for 60 us. Commands
    // fetching from rack 1 burn their 3-retry budget against the
    // blackhole by ~30 us (4 us watchdog, doubling), escalate to degraded
    // direct PRs, and finish after the repair — instead of hanging or
    // panicking. The final-abandon rung (7 restarts, ~500 us) stays far
    // behind the repair, so no data is given up.
    cfg.faults = FaultConfig::builder()
        .fail_switch_transient(1, 1_000, 60_000)
        .watchdog_ns(4_000)
        .max_retries(3)
        .backoff(2.0, 0.1)
        .seed(7)
        .build()
        .expect("transient ToR death config is valid");
    let report = simulate(&cfg, &wl);
    assert!(
        report.functional_check_passed,
        "delivery must complete once the switch is repaired"
    );
    let fr = report
        .faults
        .as_ref()
        .expect("faulted run populates FaultReport");
    assert_eq!(fr.fault_transitions, 2, "failure and repair both applied");
    assert!(fr.dropped_dead > 0, "the dead ToR must blackhole packets");
    assert!(
        fr.degraded_nodes > 0,
        "some node must exhaust its retry budget and degrade"
    );
    assert!(fr.degraded_prs > 0, "degraded nodes emit singleton PRs");
}

/// Total network partition: rack 1's ToR dies permanently, severing
/// every path to its 8 nodes. The run must *terminate* (no hang, no
/// panic): affected commands burn their extended retry budget, are
/// abandoned with the abandonment on the record, and the conservation
/// ledger still balances exactly.
#[test]
fn total_partition_terminates_with_recorded_abandonment() {
    let wl = workload(16);
    let mut cfg = ClusterConfig::mini(topo(), 16);
    cfg.faults = FaultConfig::builder()
        .fail_switch_at(1, 1_000) // rack 1's ToR, never repaired
        .watchdog_ns(4_000)
        .max_retries(2)
        .backoff(2.0, 0.1)
        .seed(7)
        .build()
        .expect("partition config is valid");
    // Liveness-guarded entry point: a hang would come back as a typed
    // stall, not a wedged test run.
    cfg.limits = SimLimits {
        max_events: Some(50_000_000),
        max_stagnant_events: Some(1_000_000),
    };
    let report = try_simulate(&cfg, &wl).expect("partitioned run must terminate, not stall");
    assert!(
        !report.functional_check_passed,
        "a severed rack cannot deliver"
    );
    let fr = report
        .faults
        .as_ref()
        .expect("faulted run populates FaultReport");
    assert!(fr.dropped_dead > 0, "the dead ToR must blackhole packets");
    assert!(
        fr.abandoned_commands > 0,
        "unreachable destinations must be abandoned, not spun on"
    );
    assert!(fr.abandoned_prs > 0, "abandoned commands abandon their PRs");
    // Conservation still balances exactly: every issued PR resolved,
    // abandoned, or orphaned by a drop.
    let issued: u64 = report.nodes.iter().map(|n| n.issued).sum();
    let responses: u64 = report.nodes.iter().map(|n| n.responses).sum();
    assert_eq!(
        issued,
        (responses - fr.stale_responses) + fr.abandoned_prs + fr.orphaned_prs,
        "PR conservation must balance at termination"
    );
}

#[test]
fn straggler_slows_the_cluster_but_changes_nothing_else() {
    let wl = workload(13);
    let clean = simulate(&ClusterConfig::mini(topo(), 16), &wl);
    let mut cfg = ClusterConfig::mini(topo(), 16);
    cfg.faults = FaultConfig::builder()
        .degrade_node(0, 4.0, 0.25)
        .build()
        .expect("degradation config is valid");
    let slow = simulate(&cfg, &wl);
    assert!(slow.functional_check_passed);
    assert!(
        slow.comm_time > clean.comm_time,
        "a 4x straggler with a quarter-rate NIC cannot be free"
    );
    // Pure degradation loses nothing and never trips the watchdog.
    let fr = slow
        .faults
        .as_ref()
        .expect("degradation populates the report");
    assert_eq!(fr.total_dropped(), 0);
    assert_eq!(fr.watchdog_retries, 0);
    assert_eq!(fr.degraded_nodes, 0, "slow is not escalated");
}

#[test]
fn tight_watchdog_surfaces_a_warning() {
    let wl = workload(14);
    let mut cfg = ClusterConfig::mini(topo(), 16);
    let est = cfg.estimated_worst_rtt_ns();
    cfg.faults = FaultConfig::builder()
        .watchdog_ns(est / 2)
        .build()
        .expect("watchdog-only config is valid");
    let report = simulate(&cfg, &wl);
    assert!(report.functional_check_passed);
    let fr = report
        .faults
        .as_ref()
        .expect("an armed watchdog populates the fault report");
    let warning = fr
        .watchdog_warning
        .as_ref()
        .expect("a timeout below the worst-case RTT must warn");
    assert!(warning.contains("watchdog_ns"), "warning: {warning}");
}

/// The PR's acceptance scenario: burst loss + one spine death + one
/// straggler on the mini cluster completes functionally, populates the
/// fault report, and replays bit-identically under the same seed.
#[test]
fn combined_faults_meet_the_acceptance_bar() {
    let wl = workload(15);
    let mut cfg = ClusterConfig::mini(topo(), 16);
    cfg.faults = FaultConfig::builder()
        .burst_loss(0.01, 0.1, 0.001, 0.05)
        .fail_switch_at(5, 3_000) // spine 5 of ToRs 0..4 / spines 4..8
        .degrade_node(3, 2.0, 0.5)
        .watchdog_ns(100_000)
        .seed(21)
        .build()
        .expect("combined scenario is valid");
    let a = simulate(&cfg, &wl);
    assert!(a.functional_check_passed);
    let fr = a
        .faults
        .as_ref()
        .expect("faulted run populates FaultReport");
    assert!(fr.total_dropped() > 0, "faults must be observable");
    assert_eq!(fr.fault_transitions, 1);
    assert!(
        fr.route_failovers > 0,
        "the dead spine must be routed around"
    );
    let b = simulate(&cfg, &wl);
    assert_eq!(
        a.events, b.events,
        "same-seed rerun must replay identically"
    );
    assert_eq!(a.audit_digest, b.audit_digest);
    assert_eq!(a.comm_time, b.comm_time);
}

#[test]
fn virtual_cqs_preserve_functionality() {
    let wl = workload(6);
    let mut cfg = ClusterConfig::mini(topo(), 16);
    cfg.concat_impl = ConcatImpl::Virtual(VirtualCqConfig {
        physical_queues: 64,
        physical_bytes: 128,
    });
    let report = simulate(&cfg, &wl);
    assert!(report.functional_check_passed);
    assert!(report.prs_per_packet.mean() > 1.0, "still concatenates");
}

#[test]
fn virtual_cqs_track_dedicated_performance_with_a_fraction_of_sram() {
    let wl = workload(7);
    let dedicated = simulate(&ClusterConfig::mini(topo(), 16), &wl);
    let mut cfg = ClusterConfig::mini(topo(), 16);
    let pool = VirtualCqConfig {
        physical_queues: 128,
        physical_bytes: 256,
    };
    cfg.concat_impl = ConcatImpl::Virtual(pool);
    let virt = simulate(&cfg, &wl);
    assert!(virt.functional_check_passed);
    // §7.2's claim: similar behaviour, cluster-size-independent SRAM.
    assert!(
        virt.comm_time_s() < dedicated.comm_time_s() * 1.5,
        "virtual {} vs dedicated {}",
        virt.comm_time_s(),
        dedicated.comm_time_s()
    );
    assert!(pool.sram_bytes() * 2 < dedicated_sram_bytes(32, 1_500));
}

#[test]
fn tiny_virtual_pool_still_correct_under_pressure() {
    let wl = workload(8);
    let mut cfg = ClusterConfig::mini(topo(), 16);
    cfg.concat_impl = ConcatImpl::Virtual(VirtualCqConfig {
        physical_queues: 4,
        physical_bytes: 128,
    });
    let report = simulate(&cfg, &wl);
    assert!(report.functional_check_passed);
}

#[test]
fn faults_and_virtual_cqs_compose() {
    let wl = workload(9);
    let mut cfg = lossy_cfg(0.01);
    cfg.concat_impl = ConcatImpl::Virtual(VirtualCqConfig::paper_sketch());
    let report = simulate(&cfg, &wl);
    assert!(report.functional_check_passed);
}
