//! §7 extensions under test: packet-loss recovery via the RIG watchdog
//! (§7.1) and virtualized Concatenation Queues (§7.2).

use netsparse::config::{ConcatImpl, FaultConfig};
use netsparse::prelude::*;
use netsparse_snic::vconcat::{dedicated_sram_bytes, VirtualCqConfig};

fn topo() -> Topology {
    Topology::LeafSpine {
        racks: 4,
        rack_size: 8,
        spines: 4,
    }
}

fn workload(seed: u64) -> CommWorkload {
    SuiteConfig {
        matrix: SuiteMatrix::Uk,
        nodes: 32,
        rack_size: 8,
        scale: 0.05,
        seed,
    }
    .generate()
}

fn lossy_cfg(loss: f64) -> ClusterConfig {
    let mut cfg = ClusterConfig::mini(topo(), 16);
    // Generous watchdog: far above a command's worst-case latency, so it
    // only fires for genuinely lost packets.
    cfg.faults = FaultConfig::lossy(loss, 100_000, 7);
    cfg
}

#[test]
fn watchdog_without_loss_never_fires() {
    let wl = workload(1);
    let lossless = simulate(&lossy_cfg(0.0), &wl);
    assert!(lossless.functional_check_passed);
    assert_eq!(lossless.dropped_packets, 0);
    let retries: u64 = lossless.nodes.iter().map(|n| n.watchdog_retries).sum();
    assert_eq!(retries, 0, "spurious watchdog restarts");
    // And it matches a run without any fault config at all.
    let plain = simulate(&ClusterConfig::mini(topo(), 16), &wl);
    assert_eq!(plain.comm_time, lossless.comm_time);
}

#[test]
fn kernel_survives_one_percent_packet_loss() {
    let wl = workload(2);
    let report = simulate(&lossy_cfg(0.01), &wl);
    assert!(report.dropped_packets > 0, "loss must actually occur");
    assert!(
        report.functional_check_passed,
        "recovery must re-fetch every lost property"
    );
    let retries: u64 = report.nodes.iter().map(|n| n.watchdog_retries).sum();
    assert!(retries > 0, "drops must trigger watchdog restarts");
}

#[test]
fn kernel_survives_heavy_packet_loss() {
    let wl = workload(3);
    let report = simulate(&lossy_cfg(0.05), &wl);
    assert!(report.functional_check_passed);
}

#[test]
fn recovery_costs_time() {
    let wl = workload(4);
    let clean = simulate(&lossy_cfg(0.0), &wl);
    let lossy = simulate(&lossy_cfg(0.02), &wl);
    assert!(
        lossy.comm_time > clean.comm_time,
        "retries cannot be free: {} vs {}",
        lossy.comm_time,
        clean.comm_time
    );
}

#[test]
#[should_panic(expected = "watchdog")]
fn loss_without_watchdog_is_rejected() {
    let mut cfg = ClusterConfig::mini(topo(), 16);
    cfg.faults.loss_rate = 0.01; // bypasses the FaultConfig constructor
    simulate(&cfg, &workload(5));
}

#[test]
fn virtual_cqs_preserve_functionality() {
    let wl = workload(6);
    let mut cfg = ClusterConfig::mini(topo(), 16);
    cfg.concat_impl = ConcatImpl::Virtual(VirtualCqConfig {
        physical_queues: 64,
        physical_bytes: 128,
    });
    let report = simulate(&cfg, &wl);
    assert!(report.functional_check_passed);
    assert!(report.prs_per_packet.mean() > 1.0, "still concatenates");
}

#[test]
fn virtual_cqs_track_dedicated_performance_with_a_fraction_of_sram() {
    let wl = workload(7);
    let dedicated = simulate(&ClusterConfig::mini(topo(), 16), &wl);
    let mut cfg = ClusterConfig::mini(topo(), 16);
    let pool = VirtualCqConfig {
        physical_queues: 128,
        physical_bytes: 256,
    };
    cfg.concat_impl = ConcatImpl::Virtual(pool);
    let virt = simulate(&cfg, &wl);
    assert!(virt.functional_check_passed);
    // §7.2's claim: similar behaviour, cluster-size-independent SRAM.
    assert!(
        virt.comm_time_s() < dedicated.comm_time_s() * 1.5,
        "virtual {} vs dedicated {}",
        virt.comm_time_s(),
        dedicated.comm_time_s()
    );
    assert!(pool.sram_bytes() * 2 < dedicated_sram_bytes(32, 1_500));
}

#[test]
fn tiny_virtual_pool_still_correct_under_pressure() {
    let wl = workload(8);
    let mut cfg = ClusterConfig::mini(topo(), 16);
    cfg.concat_impl = ConcatImpl::Virtual(VirtualCqConfig {
        physical_queues: 4,
        physical_bytes: 128,
    });
    let report = simulate(&cfg, &wl);
    assert!(report.functional_check_passed);
}

#[test]
fn faults_and_virtual_cqs_compose() {
    let wl = workload(9);
    let mut cfg = lossy_cfg(0.01);
    cfg.concat_impl = ConcatImpl::Virtual(VirtualCqConfig::paper_sketch());
    let report = simulate(&cfg, &wl);
    assert!(report.functional_check_passed);
}
