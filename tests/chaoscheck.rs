//! End-to-end pins for the chaoscheck harness (bench crate's `chaos`
//! module): deterministic scenario batches, typed rejection of poisoned
//! configs, structured stalls from the liveness watchdog, and the
//! shrinker's repro round trip on the deliberately-broken fixture.

use netsparse::config::SimLimits;
use netsparse::prelude::*;
use netsparse_bench::chaos::{
    self, parse_repro, replay_repro, run_batch, shrink, write_repro, ChaosScenario,
    ScenarioOutcome, REDUCE_SEED_BIT,
};

/// The committed smoke range: these seeds must stay clean (no oracle
/// violations, no stalls) on every machine, forever. CI runs a longer
/// range in release; this pins a slice of it in the tier-1 suite.
#[test]
fn committed_seed_batch_is_clean_and_deterministic() {
    let a = run_batch(1, 10);
    assert!(
        a.is_clean(),
        "committed seeds must not violate or stall: {:?}",
        a.violations
    );
    assert!(a.passed > 0, "the batch must actually run scenarios");
    // Same seed range → byte-identical CHAOS_report.json content.
    let b = run_batch(1, 10);
    assert_eq!(
        a.to_json(),
        b.to_json(),
        "batch report must be reproducible"
    );
}

#[test]
fn reduce_slice_batch_is_clean_and_deterministic() {
    // The reduction slice of the seed space (bit 32 set) runs the same
    // scenario population with scatter contributions flowing; the
    // reduce-conservation oracle must hold under every fault mix, and
    // the batch must stay reproducible.
    let a = run_batch(REDUCE_SEED_BIT + 1, 8);
    assert!(
        a.is_clean(),
        "reduce-slice seeds must not violate or stall: {:?}",
        a.violations
    );
    assert!(a.passed > 0, "the slice must actually run scenarios");
    let b = run_batch(REDUCE_SEED_BIT + 1, 8);
    assert_eq!(a.to_json(), b.to_json());
}

#[test]
fn poisoned_scenarios_come_back_as_typed_rejections() {
    // Seeds ≡ 3 (mod 8) carry a deliberate config poison; each must be
    // rejected by front-loaded validation — counted, never crashed on.
    // The reduce bit (≡ 0 mod 8) must not disturb the poisoned slice.
    for seed in [
        3u64,
        11,
        19,
        27,
        35,
        REDUCE_SEED_BIT + 3,
        REDUCE_SEED_BIT + 11,
    ] {
        let sc = ChaosScenario::generate(seed);
        match sc.run() {
            ScenarioOutcome::Rejected(err) => {
                assert!(!err.is_empty(), "rejection must carry a reason");
            }
            other => panic!("poisoned seed {seed} must be rejected, got {other:?}"),
        }
    }
}

#[test]
fn starved_event_budget_is_a_structured_stall() {
    // A healthy scenario under an absurdly small event budget must come
    // back as SimError::Stalled with an EventBudget report — not hang,
    // not panic — and the chaos harness classifies it as Stalled.
    let sc = ChaosScenario::generate(1);
    let mut cfg = sc.cluster_config();
    cfg.limits = SimLimits {
        max_events: Some(50),
        max_stagnant_events: None,
    };
    match try_simulate(&cfg, &sc.workload()) {
        Err(SimError::Stalled(report)) => {
            assert_eq!(report.processed, 50);
            assert!(report.pending > 0, "a stall leaves work pending");
            let msg = report.to_string();
            assert!(msg.contains("event budget"), "report: {msg}");
        }
        other => panic!("starved budget must stall, got {other:?}"),
    }
}

#[test]
fn broken_fixture_shrinks_to_a_minimal_replayable_repro() {
    let fixture = ChaosScenario::broken_fixture();
    // The fixture plants a delivery bug under noise faults.
    let oracle = match fixture.run() {
        ScenarioOutcome::Violated { violations } => {
            assert!(
                violations.iter().any(|v| v.oracle == "delivery"),
                "the planted bug is a delivery violation: {violations:?}"
            );
            "delivery"
        }
        other => panic!("broken fixture must violate, got {other:?}"),
    };
    // The shrinker strips every noise fault: the minimal scenario keeps
    // only the permanent ToR kill that actually causes the violation.
    let (min, ops) = shrink(&fixture, oracle);
    assert!(!ops.is_empty(), "the noisy fixture must shrink");
    assert_eq!(
        min.faults.failures.len(),
        1,
        "only the causal failure survives shrinking"
    );
    assert!(
        min.faults.failures[0].repair_at_ns.is_none(),
        "the survivor is the permanent ToR death"
    );
    assert!(min.faults.degraded.is_empty(), "stragglers are noise");
    assert!(
        matches!(min.faults.loss, netsparse_desim::LossModel::None),
        "loss is noise"
    );
    // The repro file round-trips and replays to the same violation.
    let json = write_repro(&min, oracle, &ops);
    let repro = parse_repro(&json).expect("repro content must parse back");
    assert_eq!(repro.oracle, oracle);
    match replay_repro(&repro).expect("repro must replay") {
        ScenarioOutcome::Violated { violations } => {
            assert!(
                violations.iter().any(|v| v.oracle == oracle),
                "replay must reproduce the recorded oracle: {violations:?}"
            );
        }
        other => panic!("repro must reproduce the violation, got {other:?}"),
    }
}

#[test]
fn oracle_suite_accepts_a_healthy_fault_free_run() {
    // A scenario with faults manually stripped must pass every oracle.
    let mut sc = ChaosScenario::generate(2);
    sc.faults = netsparse::config::FaultConfig::none();
    sc.expect_delivery = true;
    match sc.run() {
        ScenarioOutcome::Passed { report } => {
            assert!(report.functional_check_passed);
            assert!(chaos::check_report(&sc, &report).is_empty());
        }
        other => panic!("clean scenario must pass, got {other:?}"),
    }
}
