//! Cross-mechanism invariants: how the five NetSparse mechanisms (RIG
//! filtering, coalescing, concatenation, property caching, in-network
//! reduction) are allowed to change traffic, PR counts and timing
//! relative to each other.

use netsparse::prelude::*;

fn workload() -> CommWorkload {
    SuiteConfig {
        matrix: SuiteMatrix::Arabic,
        nodes: 32,
        rack_size: 8,
        scale: 0.08,
        seed: 21,
    }
    .generate()
}

fn cfg_with(mechanisms: Mechanisms, k: u32) -> ClusterConfig {
    let mut cfg = ClusterConfig::mini(
        Topology::LeafSpine {
            racks: 4,
            rack_size: 8,
            spines: 4,
        },
        k,
    );
    cfg.mechanisms = mechanisms;
    cfg
}

#[test]
fn filtering_never_increases_issued_prs() {
    let wl = workload();
    let off = simulate(&cfg_with(Mechanisms::rig_only(), 16), &wl);
    let on = simulate(
        &cfg_with(
            Mechanisms {
                filter: true,
                ..Mechanisms::rig_only()
            },
            16,
        ),
        &wl,
    );
    assert!(on.total_issued() <= off.total_issued());
    // Without any redundancy elimination, issued == remote references.
    let remote: u64 = wl.pattern_stats().total_remote_refs();
    assert_eq!(off.total_issued(), remote);
}

#[test]
fn filter_plus_coalesce_approaches_unique_lower_bound() {
    let wl = workload();
    let full = simulate(&cfg_with(Mechanisms::all(), 16), &wl);
    let unique = wl.pattern_stats().total_unique_remote();
    let issued = full.total_issued();
    // Can never go below one PR per unique (node, idx) need...
    assert!(issued >= unique);
    // ...and with both mechanisms the overshoot (cross-unit duplicates
    // racing in flight) stays bounded. It is larger at tiny scales, where
    // the whole stream fits inside the units' concurrent window.
    assert!(
        (issued as f64) < unique as f64 * 4.0,
        "issued {issued} vs unique {unique}"
    );
    // The eliminated volume still dwarfs what survives.
    let remote = wl.pattern_stats().total_remote_refs();
    assert!(
        issued * 4 < remote,
        "issued {issued} of {remote} remote refs"
    );
}

#[test]
fn concatenation_reduces_wire_bytes_not_prs() {
    let wl = workload();
    let base = Mechanisms {
        filter: true,
        coalesce: true,
        ..Mechanisms::rig_only()
    };
    let no_concat = simulate(&cfg_with(base, 16), &wl);
    let with_concat = simulate(
        &cfg_with(
            Mechanisms {
                nic_concat: true,
                ..base
            },
            16,
        ),
        &wl,
    );
    // Same logical work, fewer header bytes on the wire.
    assert!(with_concat.total_link_bytes < no_concat.total_link_bytes);
    assert!(with_concat.prs_per_packet.mean() > no_concat.prs_per_packet.mean());
    assert_eq!(no_concat.prs_per_packet.mean(), 1.0);
}

#[test]
fn concatenation_benefit_shrinks_with_k() {
    // Headers amortize over payloads: at K=128 the relative saving from
    // concatenation must be smaller than at K=1.
    let wl = workload();
    let base = Mechanisms {
        filter: true,
        coalesce: true,
        ..Mechanisms::rig_only()
    };
    let mut ratio = Vec::new();
    for k in [1u32, 128] {
        let off = simulate(&cfg_with(base, k), &wl);
        let on = simulate(
            &cfg_with(
                Mechanisms {
                    nic_concat: true,
                    switch_concat: true,
                    ..base
                },
                k,
            ),
            &wl,
        );
        ratio.push(off.total_link_bytes as f64 / on.total_link_bytes as f64);
    }
    assert!(
        ratio[0] > ratio[1],
        "K=1 byte saving {:.2} should exceed K=128 saving {:.2}",
        ratio[0],
        ratio[1]
    );
}

#[test]
fn property_cache_cuts_interswitch_traffic() {
    let wl = workload();
    let no_cache = simulate(
        &cfg_with(
            Mechanisms {
                property_cache: false,
                ..Mechanisms::all()
            },
            16,
        ),
        &wl,
    );
    let with_cache = simulate(&cfg_with(Mechanisms::all(), 16), &wl);
    assert!(with_cache.cache_hits > 0, "arabic shares enough to hit");
    // Hits short-circuit at the ToR: total bytes over all links drop.
    assert!(with_cache.total_link_bytes <= no_cache.total_link_bytes);
}

#[test]
fn cache_size_zero_equals_cache_disabled() {
    let wl = workload();
    let disabled = simulate(
        &cfg_with(
            Mechanisms {
                property_cache: false,
                ..Mechanisms::all()
            },
            16,
        ),
        &wl,
    );
    let mut cfg = cfg_with(Mechanisms::all(), 16);
    cfg.switch.cache.capacity_bytes = 0;
    let zero = simulate(&cfg, &wl);
    assert_eq!(zero.cache_hits, 0);
    assert_eq!(zero.total_issued(), disabled.total_issued());
}

#[test]
fn fc_rate_is_zero_without_mechanisms_and_high_with() {
    let wl = workload();
    let off = simulate(&cfg_with(Mechanisms::rig_only(), 16), &wl);
    for n in &off.nodes {
        assert_eq!(n.fc_rate(), 0.0);
    }
    let on = simulate(&cfg_with(Mechanisms::all(), 16), &wl);
    // Arabic's ~25x reuse means the tail node's F+C rate is large.
    assert!(on.tail().fc_rate() > 0.7, "{}", on.tail().fc_rate());
}

#[test]
fn reduction_conserves_contributions_at_scale() {
    // Arabic at 32 nodes: every issued read carries exactly one partial-sum
    // contribution, and in a lossless run every contribution reaches its
    // root — counts and wrapping value sums both balance.
    let wl = workload();
    let mut cfg = cfg_with(Mechanisms::all(), 16);
    cfg.reduce = ReduceConfig::in_network();
    let report = simulate(&cfg, &wl);
    assert!(report.functional_check_passed);
    let r = report.reduce.as_ref().expect("reduce enabled");
    assert_eq!(
        r.contribs_issued,
        report.total_issued(),
        "one contribution per issued read PR"
    );
    assert!(r.conserved(), "conservation: {r:?}");
    assert_eq!(r.contribs_dropped, 0, "lossless run drops nothing");
    assert!(r.merges > 0, "arabic shares enough rows to fold");
    assert!(r.partial_prs_at_root > 0);
}

#[test]
fn in_network_reduction_cuts_root_bytes_at_scale() {
    // The reduction ablation pair: identical contribution streams, with
    // and without switch-side folding. In-network must deliver the same
    // sums over strictly fewer root-downlink bytes.
    let wl = workload();
    let mut sw = cfg_with(Mechanisms::all(), 16);
    sw.reduce = ReduceConfig::software_baseline();
    let soft = simulate(&sw, &wl);
    let mut inn = cfg_with(Mechanisms::all(), 16);
    inn.reduce = ReduceConfig::in_network();
    let net = simulate(&inn, &wl);
    let soft_r = soft.reduce.as_ref().unwrap();
    let net_r = net.reduce.as_ref().unwrap();
    assert_eq!(soft_r.merges, 0);
    assert!(net_r.merges > 0);
    assert!(soft_r.conserved() && net_r.conserved());
    assert_eq!(soft_r.contribs_delivered, net_r.contribs_delivered);
    assert_eq!(soft_r.value_delivered, net_r.value_delivered);
    assert!(
        net_r.root_wire_bytes < soft_r.root_wire_bytes,
        "root bytes: in-network {} vs software {}",
        net_r.root_wire_bytes,
        soft_r.root_wire_bytes
    );
}

#[test]
fn reduce_disabled_leaves_reports_untouched() {
    // The extension is pay-for-use: an explicit `disabled()` run is
    // field-for-field identical to the default configuration.
    let wl = workload();
    let base = simulate(&cfg_with(Mechanisms::all(), 16), &wl);
    let mut cfg = cfg_with(Mechanisms::all(), 16);
    cfg.reduce = ReduceConfig::disabled();
    let off = simulate(&cfg, &wl);
    assert!(base.reduce.is_none());
    assert_eq!(format!("{base:?}"), format!("{off:?}"));
}

#[test]
fn more_rig_units_never_hurt_much() {
    let wl = workload();
    let mut t = Vec::new();
    for units in [2u32, 8, 32] {
        let mut cfg = cfg_with(Mechanisms::all(), 16);
        cfg.snic.rig_units = units;
        t.push(simulate(&cfg, &wl).comm_time_s());
    }
    // 32 units at least as fast as 2 (modulo small concat timing noise).
    assert!(t[2] <= t[0] * 1.1, "2 units {} vs 32 units {}", t[0], t[2]);
}

#[test]
fn pending_table_size_bounds_outstanding() {
    let wl = workload();
    let mut cfg = cfg_with(Mechanisms::all(), 16);
    cfg.snic.pending_entries = 4; // tiny: forces stalls
    let tiny = simulate(&cfg, &wl);
    assert!(tiny.functional_check_passed);
    let stalls: u64 = tiny.nodes.iter().map(|n| n.stalls).sum();
    assert!(stalls > 0, "4-entry tables must stall");
    let mut cfg = cfg_with(Mechanisms::all(), 16);
    cfg.snic.pending_entries = 1 << 20;
    let huge = simulate(&cfg, &wl);
    assert!(huge.comm_time_s() <= tiny.comm_time_s());
}
