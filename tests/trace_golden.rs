//! Golden-trace regression: the structured trace of a pinned end-to-end
//! simulation is part of the repo's contract. The committed digest (and
//! the human-readable prefix next to it) must reproduce bit-for-bit on
//! every toolchain and profile — event-flow arithmetic is all-integer, so
//! debug and release agree. Any intentional change to event ordering,
//! timing, or instrumentation must update the constants below *and* say
//! why in the commit message.
//!
//! Requires `--features trace`.

use netsparse::{simulate_traced, ClusterConfig, SimReport};
use netsparse_desim::TraceConfig;
use netsparse_netsim::Topology;
use netsparse_sparse::suite::SuiteConfig;
use netsparse_sparse::SuiteMatrix;

/// Digest of the seed-7 golden run's full record stream.
const GOLDEN_DIGEST_SEED7: u64 = 0xefae_e44c_217e_7e60;
/// Digest of the seed-11 golden run (a second seed guards against a
/// digest function that collapses distinct streams).
const GOLDEN_DIGEST_SEED11: u64 = 0x068f_08d1_e086_69f7;
/// The first records of the seed-7 run, as CSV rows — a human-readable
/// anchor so a digest mismatch is debuggable from the diff alone.
const GOLDEN_PREFIX_SEED7: &str = "\
0,0,0,cmd_issued,0,2048
0,1,0,cmd_issued,0,2048
0,2,0,cmd_issued,0,2048
0,3,0,cmd_issued,0,2048
0,4,0,cmd_issued,0,2048
0,5,0,cmd_issued,0,2048
0,6,0,cmd_issued,0,2048
0,7,0,cmd_issued,0,2048
";
/// How many records the seed-7 run captures (no drops at this scale).
const GOLDEN_LEN_SEED7: usize = 12_045;

/// The pinned golden configuration: same cluster and workload shape as
/// `determinism.rs`, with tracing attached at default capacity.
fn golden_run(seed: u64) -> SimReport {
    let topo = Topology::LeafSpine {
        racks: 2,
        rack_size: 4,
        spines: 2,
    };
    let wl = SuiteConfig {
        matrix: SuiteMatrix::Uk,
        nodes: 8,
        rack_size: 4,
        scale: 0.1,
        seed,
    }
    .generate();
    let cfg = ClusterConfig::mini(topo, 16);
    simulate_traced(&cfg, &wl, TraceConfig::default())
}

#[test]
fn same_seed_reruns_produce_identical_traces() {
    for seed in [7, 11] {
        let a = golden_run(seed);
        let b = golden_run(seed);
        let (ta, tb) = (a.trace.as_ref().unwrap(), b.trace.as_ref().unwrap());
        assert_eq!(ta.digest, tb.digest, "seed {seed}: digest diverged");
        // Not just the digest: the full record streams are equal, so a
        // digest collision cannot mask a divergence here.
        assert_eq!(
            ta.buffer.records(),
            tb.buffer.records(),
            "seed {seed}: record streams diverged"
        );
        assert_eq!(ta.buffer.dropped(), 0, "golden runs must not drop");
    }
}

#[test]
fn golden_digest_matches_the_committed_constants() {
    let a = golden_run(7);
    let tr = a.trace.as_ref().unwrap();
    assert_eq!(
        tr.buffer.len(),
        GOLDEN_LEN_SEED7,
        "seed-7 record count changed; retune the golden constants"
    );
    assert_eq!(
        tr.buffer.human_prefix(8),
        GOLDEN_PREFIX_SEED7,
        "seed-7 trace prefix changed; the first records are the debugging anchor"
    );
    assert_eq!(
        tr.digest, GOLDEN_DIGEST_SEED7,
        "seed-7 trace digest changed: {:#018x}",
        tr.digest
    );
    let b = golden_run(11);
    assert_eq!(
        b.trace.as_ref().unwrap().digest,
        GOLDEN_DIGEST_SEED11,
        "seed-11 trace digest changed: {:#018x}",
        b.trace.as_ref().unwrap().digest
    );
}

#[test]
fn different_seeds_produce_different_traces() {
    let a = golden_run(7);
    let b = golden_run(11);
    assert_ne!(
        a.trace.as_ref().unwrap().digest,
        b.trace.as_ref().unwrap().digest,
        "distinct workloads hashed to the same trace digest"
    );
}

#[test]
fn report_digest_mirrors_the_buffer() {
    let r = golden_run(7);
    let tr = r.trace.as_ref().unwrap();
    assert_eq!(tr.digest, tr.buffer.digest());
    assert_eq!(tr.buffer.offered(), tr.buffer.len() as u64);
    assert!(r.functional_check_passed);
}
