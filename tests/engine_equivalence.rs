//! Calendar-queue ↔ binary-heap equivalence oracle.
//!
//! The desim engine's default event queue is a calendar queue; the
//! original `BinaryHeap` implementation is kept as the behavioral
//! reference ([`netsparse::try_simulate_reference`]). The two must be
//! *indistinguishable*: same `(time, seq)` delivery order, therefore the
//! same `SimReport` field for field and — in builds that compile the
//! auditor in (debug, or `--features audit`) — the same event-stream
//! digest. This suite pins that across several workload seeds and a
//! faulty chaos-derived scenario, and runs in both debug and release
//! (`scripts/ci.sh` executes it in each).

use netsparse::{try_simulate, try_simulate_reference, ClusterConfig, SimReport};
use netsparse_bench::chaos::ChaosScenario;
use netsparse_netsim::Topology;
use netsparse_sparse::suite::SuiteConfig;
use netsparse_sparse::{CommWorkload, SuiteMatrix};

fn canonical_point(seed: u64) -> (ClusterConfig, CommWorkload) {
    let topo = Topology::LeafSpine {
        racks: 2,
        rack_size: 4,
        spines: 2,
    };
    let wl = SuiteConfig {
        matrix: SuiteMatrix::Uk,
        nodes: 8,
        rack_size: 4,
        scale: 0.1,
        seed,
    }
    .generate();
    (ClusterConfig::mini(topo, 16), wl)
}

/// Field-for-field report equality, ending with the audit digest — the
/// digest folds every delivered `(time, seq)` pair, so equality means the
/// two engines delivered the *same event stream*, not merely runs with
/// matching summary statistics.
fn assert_identical(cal: &SimReport, heap: &SimReport, what: &str) {
    assert_eq!(cal.events, heap.events, "{what}: event count diverged");
    assert_eq!(cal.comm_time, heap.comm_time, "{what}: comm_time diverged");
    assert_eq!(
        cal.total_link_bytes, heap.total_link_bytes,
        "{what}: link bytes diverged"
    );
    assert_eq!(
        cal.cache_lookups, heap.cache_lookups,
        "{what}: cache lookups diverged"
    );
    assert_eq!(
        cal.cache_hits, heap.cache_hits,
        "{what}: cache hits diverged"
    );
    assert_eq!(
        cal.max_link_backlog_bytes, heap.max_link_backlog_bytes,
        "{what}: backlog diverged"
    );
    assert_eq!(cal.nodes.len(), heap.nodes.len(), "{what}: node count");
    for (i, (c, h)) in cal.nodes.iter().zip(&heap.nodes).enumerate() {
        assert_eq!(c.finish, h.finish, "{what}: node {i} finish diverged");
        assert_eq!(c.issued, h.issued, "{what}: node {i} issued diverged");
        assert_eq!(
            c.responses, h.responses,
            "{what}: node {i} responses diverged"
        );
    }
    if cfg!(any(debug_assertions, feature = "audit")) {
        assert!(
            cal.audit_digest.is_some(),
            "{what}: auditor compiled in but calendar run has no digest"
        );
    }
    assert_eq!(
        cal.audit_digest, heap.audit_digest,
        "{what}: event-stream digest diverged"
    );
}

#[test]
fn backends_agree_across_seeds() {
    for seed in [7u64, 11, 2025] {
        let (cfg, wl) = canonical_point(seed);
        let cal = try_simulate(&cfg, &wl).expect("calendar run failed");
        let heap = try_simulate_reference(&cfg, &wl).expect("heap run failed");
        assert!(cal.events > 0, "seed {seed}: empty run proves nothing");
        assert_identical(&cal, &heap, &format!("seed {seed}"));
    }
}

#[test]
fn backends_agree_on_a_faulty_chaos_scenario() {
    // Walk the chaos seed space for a scenario that actually injects
    // faults and completes (not rejected, not stalled): fault transitions
    // schedule far-future events, which stress the calendar ring's
    // day-aliasing and revolution fallback in a way the clean path never
    // does. The walk is deterministic, so every run of this test checks
    // the same scenario.
    let mut checked = 0u32;
    for seed in 0u64..200 {
        let sc = ChaosScenario::generate(seed);
        if !sc.faults.is_active() {
            continue;
        }
        let cfg = sc.cluster_config();
        let wl = sc.workload();
        let (Ok(cal), Ok(heap)) = (try_simulate(&cfg, &wl), try_simulate_reference(&cfg, &wl))
        else {
            continue; // rejected or stalled: equivalence needs a report
        };
        assert_identical(&cal, &heap, &format!("chaos seed {seed}"));
        checked += 1;
        if checked >= 3 {
            break;
        }
    }
    assert!(
        checked >= 1,
        "no chaos seed in 0..200 produced a completed faulty run"
    );
}
