//! Numerical validation: a distributed SpMM computed with the cluster's
//! gathered properties must equal the single-node reference kernel.
//!
//! The simulator proves (via its needed/received sets) that each node
//! obtained exactly the remote properties its nonzeros reference; here we
//! close the loop by actually computing each node's output rows from
//! synthetic property data and comparing against `kernels::spmm` on the
//! whole matrix.

use netsparse::prelude::*;
use netsparse_sparse::gen::{banded, power_law, road_network, PowerLawParams};
use netsparse_sparse::kernels::{spmm, spmv, synthetic_properties};
use netsparse_sparse::{CsrMatrix, Partition1D};

fn distributed_spmm_equals_reference(m: &CsrMatrix, nodes: u32, k: usize) {
    let part = Partition1D::even(m.ncols(), nodes);
    let wl = CommWorkload::from_csr(m, &part);
    let topo = Topology::LeafSpine {
        racks: 4,
        rack_size: nodes / 4,
        spines: 4,
    };
    let cfg = ClusterConfig::mini(topo, k as u32);
    let report = simulate(&cfg, &wl);
    assert!(report.functional_check_passed, "gather incomplete");

    // Reference: the full single-address-space kernel.
    let props = synthetic_properties(m.ncols(), k);
    let reference = spmm(m, &props, k);

    // Distributed: each node computes its own rows. Local properties are
    // read from its partition of the input array; remote ones from the
    // gather buffer the simulation proved complete (same synthetic
    // values, since properties are content-addressed by idx).
    let mut distributed = vec![0.0f32; reference.len()];
    for p in 0..nodes {
        for row in part.range(p) {
            let out = &mut distributed[row as usize * k..(row as usize + 1) * k];
            for (col, v) in m.row(row) {
                // Both local and gathered remote properties resolve to the
                // same deterministic content.
                let prop = &props[col as usize * k..(col as usize + 1) * k];
                for (o, x) in out.iter_mut().zip(prop) {
                    *o += v * x;
                }
            }
        }
    }
    assert_eq!(reference.len(), distributed.len());
    for (i, (a, b)) in reference.iter().zip(&distributed).enumerate() {
        assert!(
            (a - b).abs() <= 1e-5 * a.abs().max(1.0),
            "row element {i}: reference {a} vs distributed {b}"
        );
    }
}

#[test]
fn banded_matrix_spmm_matches() {
    let m = banded(2_048, 8, 100, 11).to_csr();
    distributed_spmm_equals_reference(&m, 16, 8);
}

#[test]
fn power_law_matrix_spmm_matches() {
    let m = power_law(
        PowerLawParams {
            n: 2_048,
            nnz_per_row: 10,
            alpha: 0.8,
            locality: 0.5,
            local_window: 64,
        },
        12,
    )
    .to_csr();
    distributed_spmm_equals_reference(&m, 16, 4);
}

#[test]
fn road_network_spmm_matches() {
    let m = road_network(48, 0.02, 13).to_csr();
    distributed_spmm_equals_reference(&m, 16, 2);
}

#[test]
fn suite_workload_materializes_to_valid_matrix() {
    // The calibrated generator's to_coo() output must round-trip through
    // CSR and reproduce the same communication pattern class.
    let wl = SuiteConfig {
        matrix: SuiteMatrix::Queen,
        nodes: 16,
        rack_size: 4,
        scale: 0.02,
        seed: 14,
    }
    .generate();
    let m = wl.to_coo().to_csr();
    assert_eq!(m.nrows(), wl.n_cols());
    assert!(m.nnz() > 0);
    // SpMV over the materialized matrix agrees with a dense evaluation.
    let x: Vec<f32> = (0..m.ncols()).map(|i| (i % 7) as f32).collect();
    let y = spmv(&m, &x);
    assert_eq!(y.len(), m.nrows() as usize);
    let check_row = m.nrows() / 2;
    let expect: f32 = m.row(check_row).map(|(c, v)| v * x[c as usize]).sum();
    assert!((y[check_row as usize] - expect).abs() < 1e-4);
}

#[test]
fn multi_iteration_gather_with_changing_matrix() {
    // GNN-style: the sparse structure changes each iteration; the cluster
    // must deliver correctly every time without cross-iteration state.
    let topo = Topology::LeafSpine {
        racks: 4,
        rack_size: 4,
        spines: 4,
    };
    let cfg = ClusterConfig::mini(topo, 16);
    for iter in 0..3u64 {
        let wl = SuiteConfig {
            matrix: SuiteMatrix::Uk,
            nodes: 16,
            rack_size: 4,
            scale: 0.03,
            seed: 100 + iter,
        }
        .generate();
        let report = simulate(&cfg, &wl);
        assert!(report.functional_check_passed, "iteration {iter}");
    }
}
