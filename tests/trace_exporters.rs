//! Exporter validity: the Chrome trace-event JSON must be well-formed and
//! semantically sane (Perfetto-loadable), and the CSV time series must
//! account for every captured record. The JSON is re-parsed with the
//! hand-rolled parser in `netsparse_tests::json` since the workspace's
//! `serde` is a no-op stub.
//!
//! Requires `--features trace`.

use std::collections::{BTreeMap, BTreeSet};

use netsparse::{simulate_traced, ClusterConfig, SimReport};
use netsparse_desim::trace::{CLUSTER_PID, LINK_PID_BASE, SWITCH_PID_BASE};
use netsparse_desim::TraceConfig;
use netsparse_netsim::{Network, Topology};
use netsparse_sparse::suite::SuiteConfig;
use netsparse_sparse::SuiteMatrix;
use netsparse_tests::json;

fn topo() -> Topology {
    Topology::LeafSpine {
        racks: 2,
        rack_size: 4,
        spines: 2,
    }
}

fn run(capacity: usize) -> SimReport {
    let wl = SuiteConfig {
        matrix: SuiteMatrix::Uk,
        nodes: 8,
        rack_size: 4,
        scale: 0.1,
        seed: 7,
    }
    .generate();
    simulate_traced(
        &ClusterConfig::mini(topo(), 16),
        &wl,
        TraceConfig { capacity },
    )
}

#[test]
fn chrome_json_parses_and_is_semantically_valid() {
    let r = run(1 << 20);
    let tr = r.trace.as_ref().unwrap();
    let doc = json::parse(&tr.buffer.to_chrome_json());
    assert_eq!(doc.get("displayTimeUnit").str(), "ns");
    let events = doc.get("traceEvents").arr();
    assert!(!events.is_empty());

    let net = Network::new(topo());
    let (nodes, switches, links) = (net.nodes(), net.switches(), net.links());
    let mut n_instants = 0usize;
    let mut named_pids: BTreeSet<u32> = BTreeSet::new();
    let mut last_ts: BTreeMap<(u32, u32), f64> = BTreeMap::new();
    for ev in events {
        let pid = ev.get("pid").num() as u32;
        let ph = ev.get("ph").str();
        match ph {
            "M" => {
                // Metadata names processes/threads; record process names
                // to check coverage below.
                if ev.get("name").str() == "process_name" {
                    named_pids.insert(pid);
                    assert!(!ev.get("args").get("name").str().is_empty());
                }
            }
            "i" => {
                n_instants += 1;
                assert_eq!(ev.get("s").str(), "t", "thread-scoped instants");
                let tid = ev.get("tid").num() as u32;
                let ts = ev.get("ts").num();
                assert!(ts >= 0.0);
                // Per-track timestamps are monotone: records are emitted
                // in event order and stamped by the engine clock.
                let prev = last_ts.insert((pid, tid), ts).unwrap_or(0.0);
                assert!(
                    ts >= prev,
                    "track ({pid},{tid}) went backwards: {prev} -> {ts}"
                );
                // Every pid maps to a real component of this topology.
                let ok = pid < nodes
                    || (pid >= SWITCH_PID_BASE && pid < SWITCH_PID_BASE + switches)
                    || (pid >= LINK_PID_BASE && pid < LINK_PID_BASE + links)
                    || pid == CLUSTER_PID;
                assert!(ok, "pid {pid:#x} maps to no node/switch/link");
                assert!(!ev.get("name").str().is_empty());
            }
            other => panic!("unexpected phase {other:?}"),
        }
    }
    assert_eq!(n_instants, tr.buffer.len(), "one instant per record");
    // Every pid that emits records is also named by metadata.
    for (pid, _) in last_ts.keys() {
        assert!(named_pids.contains(pid), "pid {pid:#x} has no process_name");
    }
}

#[test]
fn chrome_json_timestamps_are_exact_microseconds() {
    let r = run(1 << 20);
    let tr = r.trace.as_ref().unwrap();
    let json_text = tr.buffer.to_chrome_json();
    // The exporter converts ps -> µs in integer arithmetic with 6 fixed
    // fractional digits, never through floats: a 450 ns propagation step
    // must appear as exactly 0.450000, not 0.44999999....
    let last = tr.buffer.records()[tr.buffer.len() - 1];
    let ps = last.time.as_ps();
    let expect = format!("\"ts\":{}.{:06}", ps / 1_000_000, ps % 1_000_000);
    assert!(
        json_text.contains(&expect),
        "expected exact timestamp {expect} in the JSON"
    );
}

#[test]
fn csv_accounts_for_every_record() {
    let r = run(1 << 20);
    let tr = r.trace.as_ref().unwrap();
    let csv = tr.buffer.to_csv();
    let mut lines = csv.lines();
    assert_eq!(lines.next(), Some("time_ps,pid,tid,event,a,b"));
    let rows = lines.count();
    assert_eq!(rows, tr.buffer.len(), "rows == records");
    assert_eq!(
        rows as u64,
        tr.buffer.offered() - tr.buffer.dropped(),
        "rows == offered - dropped"
    );
    // Each row has exactly 6 comma-separated fields, numeric except the
    // event name.
    for row in csv.lines().skip(1).take(100) {
        let fields: Vec<&str> = row.split(',').collect();
        assert_eq!(fields.len(), 6, "bad row {row:?}");
        for (i, f) in fields.iter().enumerate() {
            if i == 3 {
                assert!(f.chars().all(|c| c.is_ascii_lowercase() || c == '_'));
            } else {
                assert!(f.parse::<u64>().is_ok(), "bad field {f:?} in {row:?}");
            }
        }
    }
}

#[test]
fn tiny_capacity_drops_are_accounted_and_prefix_stable() {
    let full = run(1 << 20);
    let tiny = run(64);
    let (ft, tt) = (full.trace.as_ref().unwrap(), tiny.trace.as_ref().unwrap());
    assert_eq!(tt.buffer.len(), 64, "tiny buffer fills to capacity");
    assert!(tt.buffer.dropped() > 0, "overflow must be counted");
    assert_eq!(
        tt.buffer.offered(),
        ft.buffer.offered(),
        "capacity must not change what is offered"
    );
    // The buffer keeps the *earliest* records, so the captured prefix is
    // identical to the full run's — capacity changes lose the tail only.
    assert_eq!(tt.buffer.records(), &ft.buffer.records()[..64]);
    // And the CSV row count matches the truncated capture.
    let rows = tt.buffer.to_csv().lines().count() - 1;
    assert_eq!(rows as u64, tt.buffer.offered() - tt.buffer.dropped());
    // Tracing capacity must not perturb the simulation itself.
    assert_eq!(full.comm_time, tiny.comm_time);
    assert_eq!(full.events, tiny.events);
}
